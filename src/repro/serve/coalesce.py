"""Request coalescing: concurrent queries sharing a temporal signature
become one batched engine call.

PR 6 made ``query_interval_many`` evaluate a whole rectangle list with
one compiled plan and one level-wise descent per (cell, tree) — and the
plan cache is keyed by exactly the temporal signature ``(t_lo, t_hi,
window)``.  The coalescer exploits that alignment at the front door:
query requests arriving concurrently with the same signature are parked
in a per-signature bucket; when the bucket reaches ``max_batch`` or its
linger window expires, the whole bucket flushes as one
``query_interval_many`` call and each request receives its own
rectangle's result (per-rect entries and failure attribution are
*exactly* what the scalar call would have produced — PR 6's equivalence
guarantee, re-proven for this path by the serving test suite).

Within a flush, *identical* rectangles are additionally collapsed: the
engine call receives each distinct rectangle once and the per-rect
result fans back out to every request that asked for it (classic
request collapsing, the dashboard case of many clients polling the same
tile).  This is sound precisely because ``query_interval_many``
guarantees per-rect results equal to the scalar call's — two requests
for the same rectangle under the same signature cannot be told apart by
their responses.

Strictness is demuxed per request: the batch always runs degraded
(``strict=False``) so one failed shard cannot poison the other
requests; a request that asked for strict semantics and whose rectangle
overlaps a failed shard gets the same typed
:class:`~repro.engine.errors.ShardQueryError` the scalar strict path
raises, while degraded requests receive their
:class:`~repro.engine.PartialResult` untouched.

Determinism seams (R002): the linger timer is injectable — the default
schedules on the event loop (``loop.call_later``); a ``max_linger`` of
``0`` flushes on the next loop tick, which still merges everything
submitted in the current tick.  No wall clock is read here.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Protocol

from ..core.records import Rect
from ..core.results import QueryResult, QueryStats
from ..engine.errors import ShardQueryError
from .async_engine import AsyncEngine
from .stats import ServeStats

#: A bucket key: the query's temporal signature (plan-cache aligned).
Signature = tuple[int, int, int | None]


class TimerHandle(Protocol):
    """What the injectable timer seam must return."""

    def cancel(self) -> None: ...  # pragma: no cover - protocol


#: Timer seam: ``(delay_seconds, callback) -> handle``.
Timer = Callable[[float, Callable[[], None]], TimerHandle]


class _Pending:
    """One parked query request."""

    __slots__ = ("area", "strict", "future")

    def __init__(self, area: Rect, strict: bool,
                 future: "asyncio.Future[QueryResult]") -> None:
        self.area = area
        self.strict = strict
        self.future = future


class _Bucket:
    """Requests parked under one temporal signature."""

    __slots__ = ("pending", "timer")

    def __init__(self) -> None:
        self.pending: list[_Pending] = []
        self.timer: TimerHandle | None = None


class Coalescer:
    """Batches same-signature interval queries into one engine call.

    Args:
        engine: the async facade the flushes run through.
        stats: shared serving counters.
        max_batch: flush a bucket as soon as it holds this many
            requests.  ``1`` (or less) disables coalescing entirely —
            every request takes the scalar ``query_interval`` path (the
            uncoalesced A/B baseline).
        max_linger: seconds a bucket may wait for company before
            flushing.  ``0`` flushes on the next event-loop tick.
        timer: injectable linger scheduler (tests drive flushes by
            hand); defaults to ``loop.call_later``.
    """

    def __init__(self, engine: AsyncEngine, stats: ServeStats, *,
                 max_batch: int = 64, max_linger: float = 0.0,
                 timer: Timer | None = None) -> None:
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        self._engine = engine
        self._stats = stats
        self._max_batch = max_batch
        self._max_linger = max_linger
        self._timer = timer
        self._buckets: dict[Signature, _Bucket] = {}
        self._inflight: set[asyncio.Task[None]] = set()

    @property
    def enabled(self) -> bool:
        """False when ``max_batch <= 1`` (scalar pass-through mode)."""
        return self._max_batch > 1

    @property
    def pending_requests(self) -> int:
        """Requests currently parked across all buckets."""
        return sum(len(b.pending) for b in self._buckets.values())

    def _harvest(self, stats: QueryStats) -> None:
        self._stats.plan_cache_hits += stats.plan_cache_hits

    # -- the front door --------------------------------------------------------

    async def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                             window: int | None = None, *,
                             strict: bool = True) -> QueryResult:
        """Scalar-shaped query; batched under the covers when enabled."""
        self._stats.queries += 1
        if not self.enabled:
            self._stats.engine_query_calls += 1
            result = await self._engine.query_interval(
                area, t_lo, t_hi, window, strict=strict)
            self._harvest(result.stats)
            return result
        signature: Signature = (t_lo, t_hi, window)
        bucket = self._buckets.get(signature)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[signature] = bucket
            self._schedule_flush(signature, bucket)
        future: asyncio.Future[QueryResult] = \
            asyncio.get_running_loop().create_future()
        bucket.pending.append(_Pending(area, strict, future))
        if len(bucket.pending) >= self._max_batch:
            self._flush(signature)
        return await future

    # -- flushing --------------------------------------------------------------

    def _schedule_flush(self, signature: Signature,
                        bucket: _Bucket) -> None:
        loop = asyncio.get_running_loop()
        if self._max_linger <= 0:
            # Next tick: everything submitted in *this* tick coalesces,
            # nothing waits longer than one loop iteration.
            loop.call_soon(self._flush, signature)
            return
        timer: Timer = self._timer if self._timer is not None \
            else loop.call_later
        bucket.timer = timer(self._max_linger,
                             lambda: self._flush(signature))

    def _flush(self, signature: Signature) -> None:
        """Detach one bucket and evaluate it as a task (idempotent)."""
        bucket = self._buckets.pop(signature, None)
        if bucket is None or not bucket.pending:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        task = asyncio.get_running_loop().create_task(
            self._run_batch(signature, bucket.pending))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, signature: Signature,
                         pending: list[_Pending]) -> None:
        t_lo, t_hi, window = signature
        self._stats.engine_query_calls += 1
        if len(pending) > 1:
            self._stats.coalesced_batches += 1
            self._stats.coalesced_requests += len(pending)
        # Collapse identical rectangles: the engine sees each distinct
        # rect once; ``slots`` maps every request back to its result.
        areas: list[Rect] = []
        index_of: dict[tuple[int, int, int, int], int] = {}
        slots: list[int] = []
        for request in pending:
            key = (request.area.x_lo, request.area.y_lo,
                   request.area.x_hi, request.area.y_hi)
            slot = index_of.get(key)
            if slot is None:
                slot = len(areas)
                index_of[key] = slot
                areas.append(request.area)
            slots.append(slot)
        self._stats.collapsed_requests += len(pending) - len(areas)
        try:
            batch = await self._engine.query_interval_many(
                areas, t_lo, t_hi, window, strict=False)
        except Exception as exc:
            # Whatever failed the batch fails every request in it —
            # a waiter that already gave up (cancelled deadline) is
            # skipped, never silently dropped.
            for request in pending:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        self._harvest(batch.stats)
        for request, slot in zip(pending, slots, strict=True):
            result = batch.results[slot]
            if request.future.done():
                continue
            failures = list(getattr(result, "failures", ()))
            if failures and request.strict:
                first = failures[0]
                request.future.set_exception(ShardQueryError(
                    first.shard_id, first.path, first.error))
            else:
                request.future.set_result(result)

    # -- lifecycle -------------------------------------------------------------

    async def drain(self) -> None:
        """Flush every bucket and wait for in-flight batches (shutdown)."""
        for signature in list(self._buckets):
            self._flush(signature)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)

    def stats_view(self) -> dict[str, Any]:
        """Live gauges for ``/stats``."""
        return {"coalesce_pending": self.pending_requests,
                "coalesce_buckets": len(self._buckets),
                "coalesce_enabled": self.enabled}
