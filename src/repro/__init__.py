"""SWST reproduction: a disk-based index for sliding-window spatio-temporal
data (Singh, Zhu & Jagadish, ICDE 2012).

Public API::

    from repro import SWSTIndex, SWSTConfig, Rect, Entry

    index = SWSTIndex(SWSTConfig())
    index.insert(oid=1, x=100, y=200, s=0, d=50)
    result = index.query_timeslice(Rect(0, 0, 500, 500), t=25)

Sub-packages:

* ``repro.core`` — the SWST index itself.
* ``repro.engine`` — the sharded scatter-gather engine over shard pools.
* ``repro.storage`` / ``repro.btree`` / ``repro.sfc`` — disk substrate.
* ``repro.rtree`` / ``repro.mv3r`` / ``repro.baselines`` — the comparison
  indexes used in the paper's evaluation.
* ``repro.datagen`` — the GSTD synthetic stream generator and query
  workloads.
* ``repro.bench`` — the experiment harness regenerating every figure.
"""

from .core import Entry, QueryResult, QueryStats, Rect, SWSTConfig, SWSTIndex
from .engine import ShardedEngine

__version__ = "1.0.0"

__all__ = [
    "Entry",
    "QueryResult",
    "QueryStats",
    "Rect",
    "SWSTConfig",
    "SWSTIndex",
    "ShardedEngine",
    "__version__",
]
