"""Sharded scatter-gather engine over independent SWST index shards.

The engine layer scales the single-file SWST index out to a pool of
independent shards: :class:`GridShardMap` assigns every spatial grid cell
to exactly one shard, :class:`ShardedEngine` routes inserts, fans queries
out over an :class:`Executor` worker pool, merges the per-shard results
and statistics, and coordinates the sliding-window drop epoch across the
pool.  Persistence is a two-phase epoch commit (``save()`` is atomic for
the whole directory); query fan-out is resilient (:class:`RetryPolicy`,
per-shard :class:`CircuitBreaker`, degraded :class:`PartialResult`
mode).  :class:`WorkerEngine` keeps the same API but runs every shard
in a long-lived worker *process* fed through a per-shard write-ahead
log, so acknowledged writes survive worker crashes (the supervisor
restarts the worker and replays the WAL tail).  See
``docs/internals.md`` (engine layer, failure model, warm workers) for
the design.
"""

from .engine import PartialResult, ShardedEngine, load_manifest
from .errors import (CircuitOpenError, EngineClosedError, EngineCloseError,
                     EngineError, EpochTornError, ReshardError,
                     ReshardInProgressError, ShardFailure, ShardOpenError,
                     ShardQueryError, TaskTimeoutError, WalCorruptError,
                     WalError, WorkerCrashError, WorkerRecoveryError)
from .executor import (Executor, ProcessExecutor, SerialExecutor,
                       ThreadedExecutor, resolve_executor)
from .reshard import GenerationBuild, ReshardReport, reshard
from .retry import CircuitBreaker, RetryPolicy
from .scrub import DirectoryScrubReport, scrub_directory
from .sharding import GridShardMap
from .wal import (WalReport, WalScan, WalWriter, read_wal, replay,
                  wal_file_name)
from .worker import WorkerEngine, WorkerPool

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DirectoryScrubReport",
    "EngineCloseError",
    "EngineClosedError",
    "EngineError",
    "EpochTornError",
    "Executor",
    "GenerationBuild",
    "GridShardMap",
    "PartialResult",
    "ProcessExecutor",
    "ReshardError",
    "ReshardInProgressError",
    "ReshardReport",
    "RetryPolicy",
    "SerialExecutor",
    "ShardFailure",
    "ShardOpenError",
    "ShardQueryError",
    "ShardedEngine",
    "TaskTimeoutError",
    "ThreadedExecutor",
    "WalCorruptError",
    "WalError",
    "WalReport",
    "WalScan",
    "WalWriter",
    "WorkerCrashError",
    "WorkerEngine",
    "WorkerPool",
    "WorkerRecoveryError",
    "load_manifest",
    "read_wal",
    "replay",
    "reshard",
    "resolve_executor",
    "scrub_directory",
    "wal_file_name",
]
