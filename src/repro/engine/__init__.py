"""Sharded scatter-gather engine over independent SWST index shards.

The engine layer scales the single-file SWST index out to a pool of
independent shards: :class:`GridShardMap` assigns every spatial grid cell
to exactly one shard, :class:`ShardedEngine` routes inserts, fans queries
out over an :class:`Executor` worker pool, merges the per-shard results
and statistics, and coordinates the sliding-window drop epoch across the
pool.  See ``docs/internals.md`` (engine layer) for the design.
"""

from .engine import ShardedEngine
from .errors import EngineClosedError, EngineError, ShardOpenError
from .executor import (Executor, ProcessExecutor, SerialExecutor,
                       ThreadedExecutor, resolve_executor)
from .sharding import GridShardMap

__all__ = [
    "EngineClosedError",
    "EngineError",
    "Executor",
    "GridShardMap",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardOpenError",
    "ShardedEngine",
    "ThreadedExecutor",
    "resolve_executor",
]
