"""Sharded scatter-gather engine over independent SWST index shards.

:class:`ShardedEngine` partitions the spatial grid's cell space across
``config.n_shards`` independent :class:`~repro.core.index.SWSTIndex`
instances — each with its own page file, pager, buffer pool and
decoded-node cache — using the deterministic
:class:`~repro.engine.sharding.GridShardMap`.  Because the SWST layers
share nothing between spatial cells, a shard holds exactly the B+ trees
and memos of the cells it owns, and:

* every insert routes to exactly one shard (the owner of the report's
  cell),
* every range query fans out only to the shards owning cells that
  overlap the query rectangle, scatter-gather over a pluggable
  :class:`~repro.engine.executor.Executor`, merging per-shard
  :class:`~repro.core.results.QueryResult`/``QueryStats``,
* the sliding window is *coordinated*: the engine advances every
  shard's clock in lockstep, so the wholesale tree-drop epoch (stream
  time crossing a multiple of ``Wmax``) fires consistently across the
  pool.

The engine owns the cross-shard part of the current-entry protocol: an
object's consecutive reports may land in cells owned by different
shards, in which case the previous shard finalises the old current
entry while the new shard receives the fresh one.  A single-shard
engine degenerates to byte-identical behaviour — same entries, same
query results, same logical node-access counts — as a plain
``SWSTIndex`` fed the same stream.

On disk an engine is a *directory*::

    index.d/
      engine.json          # manifest: {"format": 2, "n_shards": N,
      shard-000.pages      #            "epoch": E, "shards": [gen...],
      shard-001.pages      #            "generation": G}
      ...                  # one crash-safe format-v2 page file per shard
      engine.prepare.json  # transient save marker (two-phase commit)
      snapshots/<E>/       # CoW copies of the shard files at epoch E
      gen-001/             # shard files of manifest generation 1
                           # (resharded directories; generation 0 lives
                           # at the directory root)

**Two-phase epoch commit.**  ``save()`` makes the whole directory one
atomic unit: it first durably writes a PREPARE marker recording the next
epoch and the exact header generation each shard will reach when its
commit lands, then commits every shard, then atomically flips the
manifest to the new epoch and removes the marker (every step fsyncs the
file and the containing directory).  ``open()`` after a crash
classifies the directory deterministically from the marker: if no shard
committed the new epoch it *rolls back* (the old snapshot is intact);
if every shard committed it *rolls forward* (finishing the manifest
flip); if the crash landed between shard commits — the one window the
in-place storage layer cannot undo — it restores the committed shards
from the previous epoch's copy-on-write snapshot (``snapshots/<E>/``,
written at the end of the save that committed epoch ``E``, while the
shard files are provably clean) and rolls the whole directory back;
only when no snapshot exists (``snapshots=False`` engines, or
pre-snapshot directories) does it raise a typed
:class:`~repro.engine.errors.EpochTornError` naming both shard groups
instead of silently serving a mixed snapshot.  Format-1 manifests (no
epoch) still open; their first ``save()`` upgrades them.

**Generations.**  ``repro.engine.reshard`` rewrites a saved directory
to a different shard count by streaming the entries into a fresh set of
shard files built side-by-side under ``gen-<G>/`` and atomically
flipping the manifest to the new generation; ``generation`` in the
manifest names the subdirectory the live shard files inhabit
(generation 0 is the directory root).

**Resilient fan-out.**  Read-only query fan-out wraps each per-shard
task in the engine's :class:`~repro.engine.retry.RetryPolicy`
(transient ``OSError``/worker-death retries with exponential backoff
over injected seams) and per-shard
:class:`~repro.engine.retry.CircuitBreaker` accounting.  ``strict=True``
(default) raises a typed :class:`~repro.engine.errors.ShardQueryError`
naming the first failed shard; ``strict=False`` degrades gracefully,
returning a :class:`PartialResult` carrying the surviving shards' merged
entries plus a typed :class:`~repro.engine.errors.ShardFailure` per
failed shard, with ``stats.degraded`` set.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
from typing import Any, Callable, Iterable, Iterator

from ..core.config import SWSTConfig
from ..core.grid import SpatialGrid
from ..core.index import SWSTIndex
from ..core.overlap import classify_interval
from ..core.plan import PlanCache, QueryPlan, build_query_plan
from ..core.records import Entry, Rect, ReportLike
from ..core.results import MultiQueryResult, QueryResult, QueryStats
from ..storage.errors import StorageError
from ..storage.fileops import DURABLE_FILE_OPS, FileOps
from ..storage.pager import MEMORY
from ..storage.scrub import probe_committed_generation
from ..storage.stats import IOStats
from .errors import (CircuitOpenError, EngineClosedError, EngineCloseError,
                     EngineError, EpochTornError, ShardFailure,
                     ShardOpenError, ShardQueryError, TaskTimeoutError)
from .executor import (Executor, ThreadedExecutor, discard_worker_shard,
                       open_worker_shard)
from .retry import CircuitBreaker, RetryPolicy
from .sharding import GridShardMap

_MANIFEST_NAME = "engine.json"
_PREPARE_NAME = "engine.prepare.json"
_MANIFEST_FORMAT = 2

#: Per-shard failures a degraded fan-out absorbs into ``ShardFailure``
#: records: storage-layer corruption/IO, raw OS errors, and the engine's
#: own typed errors (timeouts, open circuit breakers).
_SHARD_FAILURE_ERRORS = (StorageError, OSError, EngineError)


_SNAPSHOTS_DIR = "snapshots"
_GEN_DIR_PREFIX = "gen-"


def _shard_file_name(shard_id: int) -> str:
    return f"shard-{shard_id:03d}.pages"


def generation_dir(directory: str, generation: int) -> str:
    """Directory holding one generation's shard files (root for gen 0)."""
    if generation == 0:
        return directory
    return os.path.join(directory, f"{_GEN_DIR_PREFIX}{generation:03d}")


def snapshot_dir(directory: str, epoch: int) -> str:
    """Directory holding the CoW shard snapshots of one epoch."""
    return os.path.join(directory, _SNAPSHOTS_DIR, f"{epoch:06d}")


def write_json_atomic(fops: FileOps, directory: str, path: str,
                      blob: dict[str, Any]) -> None:
    """Durable atomic JSON write: temp + fsync, rename, dir fsync."""
    data = (json.dumps(blob, sort_keys=True) + "\n").encode()
    tmp_path = path + ".tmp"
    fops.write_file(tmp_path, data)
    fops.replace(tmp_path, path)
    fops.fsync_dir(directory)


def probe_prepare_state(
        prepare: dict[str, Any], shard_paths: list[str]
) -> tuple[list[int | None], list[int], list[int]]:
    """Classify shards against a PREPARE marker's expected generations.

    Probes each shard's committed header generation passively (no open,
    no commit) and splits the ids into ``committed`` (the shard reached
    the generation the marker said its save would produce) and
    ``pending`` (it did not, or the file is unreadable).  Shared by
    :meth:`ShardedEngine._recover_epoch` and the warm-worker engine's
    marker resolution, so both recoveries classify identically.
    """
    observed = [probe_committed_generation(path) for path in shard_paths]
    committed = [sid for sid, gen in enumerate(observed)
                 if gen is not None and gen >= prepare["expected"][sid]]
    pending = [sid for sid in range(len(shard_paths))
               if sid not in set(committed)]
    return observed, committed, pending


def load_manifest(manifest_path: str) -> dict[str, Any]:
    """Read and validate an engine manifest, normalising across formats.

    Returns ``{"format", "n_shards", "epoch", "shards", "generation"}``;
    format-1 manifests (pre-epoch) normalise to epoch 0 with
    ``shards=None``.  ``generation`` (the subdirectory the live shard
    files inhabit — see :func:`generation_dir`) is optional in the file
    and defaults to 0, so pre-reshard format-2 manifests keep opening.
    """
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise EngineError(f"cannot read engine manifest "
                          f"{manifest_path!r}: {exc}") from exc
    if not isinstance(manifest, dict) \
            or not isinstance(manifest.get("n_shards"), int) \
            or manifest["n_shards"] < 1:
        raise EngineError(f"engine manifest {manifest_path!r} is not a "
                          f"recognised SWST engine manifest")
    n_shards: int = manifest["n_shards"]
    fmt = manifest.get("format")
    if fmt == 1:
        return {"format": 1, "n_shards": n_shards, "epoch": 0,
                "shards": None, "generation": 0}
    if fmt == _MANIFEST_FORMAT:
        epoch = manifest.get("epoch")
        gens = manifest.get("shards")
        generation = manifest.get("generation", 0)
        if not isinstance(epoch, int) or epoch < 0 \
                or not isinstance(gens, list) or len(gens) != n_shards \
                or not all(isinstance(g, int) and g >= 0 for g in gens) \
                or not isinstance(generation, int) or generation < 0:
            raise EngineError(f"engine manifest {manifest_path!r} is a "
                              f"malformed format-{_MANIFEST_FORMAT} "
                              f"manifest")
        return {"format": _MANIFEST_FORMAT, "n_shards": n_shards,
                "epoch": epoch, "shards": list(gens),
                "generation": generation}
    raise EngineError(f"engine manifest {manifest_path!r} has unsupported "
                      f"format {fmt!r}")


def _load_prepare(prepare_path: str) -> dict[str, Any] | None:
    """Read the PREPARE marker; ``None`` if absent, typed error if torn.

    The marker is written atomically (temp file + fsync + rename + dir
    fsync), so on a healthy filesystem it is either absent or valid; an
    unreadable marker means external damage and recovery refuses to
    guess.
    """
    try:
        with open(prepare_path) as handle:
            record = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise EngineError(f"cannot read save marker {prepare_path!r}: "
                          f"{exc}") from exc
    expected = record.get("expected") if isinstance(record, dict) else None
    if not isinstance(record, dict) \
            or record.get("format") != _MANIFEST_FORMAT \
            or not isinstance(record.get("epoch"), int) \
            or record["epoch"] < 1 \
            or not isinstance(record.get("n_shards"), int) \
            or not isinstance(expected, list) \
            or len(expected) != record["n_shards"] \
            or not all(isinstance(g, int) and g >= 1 for g in expected):
        raise EngineError(f"save marker {prepare_path!r} is malformed")
    return record


def _guarded_call(policy: RetryPolicy,
                  fn: Callable[[], Any]) -> tuple[str, Any]:
    """Run ``fn`` under ``policy``; return ``("ok", result)`` or
    ``("err", exception)``.

    Outcome tuples keep executor task callables free of shared-state
    mutation (invariant R005): the engine folds outcomes into circuit
    breaker state on the gathering side, never inside the task.
    """
    try:
        return ("ok", policy.call(fn))
    except _SHARD_FAILURE_ERRORS as exc:
        return ("err", exc)


def _remote_query_task(
        task: tuple[str, SWSTConfig, str, tuple[Any, ...], RetryPolicy, int]
) -> tuple[str, Any]:
    """Out-of-process task: open one saved shard and run one method.

    Used by remote (process-pool) executors, which cannot reach the
    parent's live shard objects.  The shard is opened read-only in
    practice (query methods never mutate, so the pager commits nothing)
    through the worker-local handle cache keyed on the engine's save
    epoch — repeated queries against an unchanged directory reuse the
    open shard instead of re-parsing the catalog and warming the buffer
    pool from scratch.  A failed attempt discards the cached handle, so
    retries (which run *inside* the worker — a transient fault does not
    cost a round trip through the pool) start from a fresh open.
    """
    path, config, method, args, policy, epoch = task

    def open_shard() -> SWSTIndex:
        return SWSTIndex.open(path, config)

    def attempt() -> Any:
        shard = open_worker_shard(path, epoch, open_shard)
        try:
            return getattr(shard, method)(*args)
        except BaseException:
            discard_worker_shard(path)
            raise

    return _guarded_call(policy, attempt)


@dataclasses.dataclass
class PartialResult(QueryResult):
    """A degraded (``strict=False``) query result.

    Carries the merged entries and statistics of the shards that
    answered, plus one typed :class:`ShardFailure` per shard that did
    not.  ``stats.degraded`` is True iff ``failures`` is non-empty.
    """

    failures: list[ShardFailure] = dataclasses.field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True if every dispatched shard answered (no failures)."""
        return not self.failures


class ShardedEngine:
    """Scatter-gather front end over ``config.n_shards`` SWST shards.

    Args:
        config: index parameters; ``config.n_shards`` fixes the shard
            count (the default config is a single shard).
        path: shard directory, or ``":memory:"`` (default) for an
            all-in-memory engine (each shard on its own memory device).
        executor: worker pool for scatter-gather; defaults to a
            :class:`~repro.engine.executor.ThreadedExecutor` sized to
            the shard count.  A caller-supplied executor is *borrowed*
            (``close()`` leaves it running); the default one is owned
            and shut down with the engine.
        retry_policy: per-shard retry policy for read-only query
            fan-out; defaults to ``RetryPolicy()`` (3 deterministic
            immediate attempts).  Pass ``RetryPolicy(attempts=1)`` to
            disable retries.
        breaker_factory: builds one circuit breaker per shard;
            defaults to :class:`~repro.engine.retry.CircuitBreaker`
            with its deterministic attempt-counting clock.  Pass
            ``None`` to disable breakers entirely.
        task_timeout: per-task deadline (seconds) for query fan-out, or
            ``None`` (default) for no deadline.  Timeouts are typed
            (:class:`~repro.engine.errors.TaskTimeoutError`) and never
            retried — an abandoned worker may still hold its shard.
        file_ops: durable filesystem seam for the manifest protocol;
            tests substitute a fault-injecting implementation.
        snapshots: when True (default), every ``save()`` first CoW-copies
            the shard files into ``snapshots/<epoch>/`` so a save torn
            between in-place shard commits rolls back on ``open()``
            instead of raising :class:`EpochTornError`.  ``False``
            restores the pre-snapshot protocol (and its torn window).

    The engine exposes the full ``SWSTIndex`` query surface
    (``query_timeslice``, ``query_interval``, ``count_interval``,
    ``query_knn``, ``density_grid``, ``object_history``,
    ``forget_object``, ``set_retention``) plus the ingestion API
    (``insert``, ``report``, ``extend``, ``close_object``, ``delete``,
    ``advance_time``).  It is not itself thread-safe for concurrent
    callers; internal parallelism only ever touches disjoint shards.
    """

    def __init__(self, config: SWSTConfig | None = None,
                 path: str = MEMORY,
                 executor: Executor | None = None, *,
                 retry_policy: RetryPolicy | None = None,
                 breaker_factory: Callable[[], CircuitBreaker] | None
                 = CircuitBreaker,
                 task_timeout: float | None = None,
                 file_ops: FileOps | None = None,
                 snapshots: bool = True) -> None:
        self.config = config if config is not None else SWSTConfig()
        self._init_common(executor, retry_policy, breaker_factory,
                          task_timeout, file_ops)
        self._snapshots = snapshots
        self._dir: str | None = None
        if os.fspath(path) != MEMORY:
            self._dir = os.fspath(path)
            self._prepare_directory()
        self._shards: list[SWSTIndex] = []
        try:
            for shard_id in range(self.n_shards):
                self._shards.append(
                    SWSTIndex(self.config, self.shard_path(shard_id)))
            if self._dir is not None and self._snapshots \
                    and all(shard.pager.format_version == 2
                            for shard in self._shards):
                self._ensure_snapshot()
        except BaseException:
            self._abandon()
            raise

    def _init_common(self, executor: Executor | None,
                     retry_policy: RetryPolicy | None,
                     breaker_factory: Callable[[], CircuitBreaker] | None,
                     task_timeout: float | None,
                     file_ops: FileOps | None) -> None:
        self.grid = SpatialGrid(self.config.space, self.config.x_partitions,
                                self.config.y_partitions)
        self.shard_map = GridShardMap(self.config.x_partitions,
                                      self.config.y_partitions,
                                      self.config.n_shards)
        if executor is None:
            self._executor: Executor = ThreadedExecutor(
                max_workers=self.config.n_shards)
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False
        self._retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self._breakers: list[CircuitBreaker | None] = [
            breaker_factory() if breaker_factory is not None else None
            for _ in range(self.config.n_shards)]
        self._task_timeout = task_timeout
        self._fops: FileOps = file_ops if file_ops is not None \
            else DURABLE_FILE_OPS
        self._home: dict[int, int] = {}
        self._plans = PlanCache(self.config.plan_cache_size)
        self._clock = 0
        self._epoch = 0
        self._generation = 0
        self._snapshots = True
        self._mutated = False
        self._closed = False

    # -- directory layout -----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def directory(self) -> str | None:
        """Shard directory path (``None`` for an in-memory engine)."""
        return self._dir

    @property
    def epoch(self) -> int:
        """Manifest epoch of the last whole-directory save (0 = never)."""
        return self._epoch

    @property
    def generation(self) -> int:
        """Manifest generation the live shard files inhabit (0 = root)."""
        return self._generation

    def shard_path(self, shard_id: int) -> str:
        """Page-file path of one shard (``":memory:"`` when memory-backed)."""
        if self._dir is None:
            return MEMORY
        return os.path.join(generation_dir(self._dir, self._generation),
                            _shard_file_name(shard_id))

    def _manifest_path(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, _MANIFEST_NAME)

    def _prepare_path(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, _PREPARE_NAME)

    def _prepare_directory(self) -> None:
        assert self._dir is not None
        if os.path.exists(self._dir) and not os.path.isdir(self._dir):
            raise EngineError(f"engine path {self._dir!r} exists and is "
                              f"not a directory")
        os.makedirs(self._dir, exist_ok=True)
        if os.path.exists(self._prepare_path()):
            raise EngineError(
                f"directory {self._dir!r} holds an interrupted save "
                f"(marker {_PREPARE_NAME}); recover it with "
                f"ShardedEngine.open() first")
        manifest_path = self._manifest_path()
        if os.path.exists(manifest_path):
            manifest = load_manifest(manifest_path)
            if manifest["n_shards"] != self.n_shards:
                raise EngineError(
                    f"directory {self._dir!r} holds {manifest['n_shards']} "
                    f"shards but config.n_shards is {self.n_shards}")
            self._epoch = manifest["epoch"]
            self._generation = manifest["generation"]
            return
        self._write_json_atomic(
            manifest_path,
            {"format": _MANIFEST_FORMAT, "n_shards": self.n_shards,
             "epoch": 0, "shards": [0] * self.n_shards, "generation": 0})

    def _write_json_atomic(self, path: str, blob: dict[str, Any]) -> None:
        """Durable atomic JSON write: temp + fsync, rename, dir fsync."""
        assert self._dir is not None
        write_json_atomic(self._fops, self._dir, path, blob)

    def _abandon(self) -> None:
        """Close whatever was built so far after a failed init/open.

        Idempotent: the shard-opening helpers abandon on their own
        failures and the outer ``open()``/``__init__`` guard abandons
        again on the way out.
        """
        if getattr(self, "_abandoned", False):
            return
        self._abandoned = True
        self._closed = True
        for shard in getattr(self, "_shards", []):
            # Best-effort: a shard whose close fails (its device already
            # torn down) must not mask the original init/open error.
            with contextlib.suppress(StorageError, OSError, ValueError):
                shard.close()
        if self._owns_executor:
            with contextlib.suppress(OSError, RuntimeError):
                self._executor.close()

    # -- properties ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current stream time τ (shared by every shard)."""
        return self._clock

    def __len__(self) -> int:
        """Physically stored entries across every shard."""
        return sum(len(shard) for shard in self._shards)

    @property
    def shards(self) -> tuple[SWSTIndex, ...]:
        """The shard indexes, in shard-id order (diagnostics/tests)."""
        return tuple(self._shards)

    @property
    def breakers(self) -> tuple[CircuitBreaker | None, ...]:
        """Per-shard circuit breakers, in shard-id order (diagnostics)."""
        return tuple(self._breakers)

    @property
    def stats(self) -> IOStats:
        """Aggregate IO counters across every shard (a fresh snapshot).

        Unlike ``SWSTIndex.stats`` this is not a live object — call again
        for updated totals.  ``snapshot()``/``diff()`` work as usual, so
        the engine drops into harness code written for a single index.
        """
        total = IOStats()
        for shard in self._shards:
            snap = shard.stats.snapshot()
            for name in vars(snap):
                setattr(total, name, getattr(total, name) + getattr(snap,
                                                                    name))
        return total

    def shard_stats(self) -> list[IOStats]:
        """Per-shard IO counter snapshots, in shard-id order."""
        return [shard.stats.snapshot() for shard in self._shards]

    def node_count(self) -> int:
        """Total B+ tree pages across every shard."""
        return sum(shard.node_count() for shard in self._shards)

    def current_objects(self) -> dict[int, tuple[int, int, int]]:
        """Merged current-entry table: oid -> (x, y, s)."""
        merged: dict[int, tuple[int, int, int]] = {}
        for shard in self._shards:
            merged.update(shard.current_objects())
        return merged

    # -- routing helpers -------------------------------------------------------

    def _shard_id_of(self, x: int, y: int) -> int:
        cx, cy = self.grid.cell_of(x, y)
        return self.shard_map.shard_of_cell(cx, cy)

    def _shards_for_area(self, area: Rect) -> list[int]:
        """Sorted ids of the shards owning cells that overlap ``area``."""
        ids: set[int] = set()
        for cell in self.grid.overlapping_cells(area):
            ids.add(self.shard_map.shard_of_cell(cell.cx, cell.cy))
            if len(ids) == self.n_shards:
                break
        return sorted(ids)

    def _live_home(self, oid: int) -> int | None:
        """Shard currently holding ``oid``'s current entry, if any.

        The home map is maintained eagerly on routing but window drops
        remove current entries shard-side; stale homes are reaped here.
        """
        home = self._home.get(oid)
        if home is None:
            return None
        if oid not in self._shards[home]._current:
            del self._home[oid]
            return None
        return home

    # -- resilient fan-out -----------------------------------------------------

    def _dispatchable(self, shard_ids: list[int]
                      ) -> tuple[list[int], list[ShardFailure]]:
        """Split ``shard_ids`` by circuit breaker state.

        Shards whose breaker is open are failed up front (typed
        :class:`CircuitOpenError`, no dispatch); the rest are returned
        for fan-out.
        """
        dispatch: list[int] = []
        failures: list[ShardFailure] = []
        for sid in shard_ids:
            breaker = self._breakers[sid]
            if breaker is not None and not breaker.allow():
                failures.append(ShardFailure(
                    sid, self.shard_path(sid), CircuitOpenError(sid)))
            else:
                dispatch.append(sid)
        return dispatch, failures

    def _fan_out_query(self, shard_ids: list[int], method: str,
                       args: tuple[Any, ...]
                       ) -> tuple[list[tuple[int, Any]], list[ShardFailure]]:
        """Scatter one read-only method over ``shard_ids`` resiliently.

        Every dispatched task runs under the engine's retry policy;
        outcomes are folded into the per-shard circuit breakers here on
        the gathering side (executor callables never mutate shared
        state).  Returns ``(successes, failures)`` where ``successes``
        is ``(shard_id, result)`` pairs in ``shard_ids`` order and
        ``failures`` is one typed :class:`ShardFailure` per shard that
        was skipped (open breaker), exhausted its retries, or was
        abandoned by a fan-out deadline.
        """
        dispatch, failures = self._dispatchable(shard_ids)
        if not dispatch:
            return [], failures
        policy = self._retry_policy
        if getattr(self._executor, "remote", False):
            if self._dir is None:
                raise EngineError(
                    "a remote (process) executor needs a disk-backed "
                    "engine; this one is in-memory")
            if self._mutated:
                raise EngineError(
                    "a remote (process) executor reopens shards from "
                    "disk; call save() after mutating the engine")
            config = dataclasses.replace(self.config, device_factory=None)
            tasks = [(self.shard_path(sid), config, method, args, policy,
                      self._epoch)
                     for sid in dispatch]

            def run() -> list[tuple[str, Any]]:
                return self._executor.map(_remote_query_task, tasks,
                                          timeout=self._task_timeout)
        else:
            shards = self._shards

            def local_task(sid: int) -> tuple[str, Any]:
                return _guarded_call(
                    policy, lambda: getattr(shards[sid], method)(*args))

            def run() -> list[tuple[str, Any]]:
                return self._executor.map(local_task, dispatch,
                                          timeout=self._task_timeout)
        try:
            outcomes = run()
        except TaskTimeoutError as exc:
            # The whole gather is abandoned: the timed-out task may
            # still be running, and tasks after it were never collected.
            # Timeouts are not retried (the worker may still hold the
            # shard) and only the overrunning shard's breaker records a
            # failure — its siblings were merely collateral.
            timed_sid = dispatch[exc.item_index]
            breaker = self._breakers[timed_sid]
            if breaker is not None:
                breaker.record_failure()
            for sid in dispatch:
                error: EngineError = exc if sid == timed_sid else \
                    EngineError(f"fan-out abandoned after shard "
                                f"{timed_sid} exceeded its deadline")
                failures.append(ShardFailure(
                    sid, self.shard_path(sid), error))
            return [], failures
        successes: list[tuple[int, Any]] = []
        for sid, (tag, value) in zip(dispatch, outcomes):
            breaker = self._breakers[sid]
            if tag == "ok":
                if breaker is not None:
                    breaker.record_success()
                successes.append((sid, value))
            else:
                if breaker is not None:
                    breaker.record_failure()
                failures.append(ShardFailure(
                    sid, self.shard_path(sid), value))
        return successes, failures

    def _raise_shard_failure(self, failures: list[ShardFailure]) -> None:
        """Strict mode: surface the first shard failure as a typed error."""
        failure = failures[0]
        raise ShardQueryError(failure.shard_id, failure.path,
                              failure.error) from failure.error

    # -- insertion and updates -------------------------------------------------

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert an entry; ``d=None`` inserts a *current* entry.

        Same contract as :meth:`SWSTIndex.insert` — ordered stream, one
        live current entry per object — with routing and the cross-shard
        current protocol handled by the engine.
        """
        self._check_open()
        if not self.config.space.contains(x, y):
            raise ValueError(f"location ({x}, {y}) outside the spatial "
                             f"domain {self.config.space}")
        if s < self._clock:
            raise ValueError(f"out-of-order start timestamp {s} < current "
                             f"time {self._clock}")
        if d is not None and d < 1:
            raise ValueError(f"duration must be >= 1, got {d}")
        self.advance_time(s)
        if d is not None:
            self._shards[self._shard_id_of(x, y)].insert(oid, x, y, s, d)
            return
        self._route_report(oid, x, y, s)

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report of a moving object (alias of a current insert)."""
        self.insert(oid, x, y, t, None)

    def _route_report(self, oid: int, x: int, y: int, s: int) -> None:
        """Current-entry protocol across shards, clock already advanced.

        Mirrors the single-index protocol exactly: a re-report at the
        same timestamp replaces the current entry (position correction);
        otherwise the previous current entry — wherever it lives — is
        finalised with its real duration before the new one is inserted
        into the destination shard.
        """
        self._mutated = True
        home = self._live_home(oid)
        dest_id = self._shard_id_of(x, y)
        dest = self._shards[dest_id]
        if home is not None:
            home_shard = self._shards[home]
            px, py, ps = home_shard._current[oid]
            if ps == s:
                home_shard._physical_delete(Entry(oid, px, py, ps, None))
                del home_shard._current[oid]
            else:
                del home_shard._current[oid]
                home_shard._finalize_current(oid, (px, py, ps), end=s)
        dest._physical_insert(Entry(oid, x, y, s, None))
        dest._current[oid] = (x, y, s)
        self._home[oid] = dest_id

    def extend(self, reports: Iterable[ReportLike],
               batch_size: int = 1024) -> int:
        """Batched ingestion: split per shard and ingest in parallel.

        Reports are consumed in chunks of ``batch_size``; each chunk is
        validated, split into ``Wmax``-epoch runs (window drops only
        fire at epoch boundaries), and every run is partitioned by
        destination shard.  Objects whose reports stay within one shard
        are ingested per shard — in parallel on the engine's executor —
        through the same cell-grouped batch path as
        :meth:`SWSTIndex.extend`; objects whose current entry hops
        between shards take the serial cross-shard protocol first
        (reports of distinct objects commute within a run).

        Returns the number of reports ingested.
        """
        self._check_open()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        count = 0
        batch: list[ReportLike] = []
        for report in reports:
            batch.append(report)
            if len(batch) >= batch_size:
                count += self._extend_batch(batch)
                batch.clear()
        if batch:
            count += self._extend_batch(batch)
        return count

    def _extend_batch(self, batch: list[ReportLike]) -> int:
        clock = self._clock
        for report in batch:
            if not self.config.space.contains(report.x, report.y):
                raise ValueError(f"location ({report.x}, {report.y}) outside "
                                 f"the spatial domain {self.config.space}")
            if report.t < clock:
                raise ValueError(f"out-of-order start timestamp {report.t} "
                                 f"< current time {clock}")
            clock = report.t
        w_max = self.config.w_max
        start = 0
        for idx in range(1, len(batch) + 1):
            if idx == len(batch) \
                    or batch[idx].t // w_max != batch[start].t // w_max:
                self._ingest_run(batch[start:idx])
                start = idx
        return len(batch)

    def _ingest_run(self, run: list[ReportLike]) -> None:
        """One epoch run: serial cross-shard reports, then parallel rest."""
        self.advance_time(run[-1].t)
        self._mutated = True
        # An object is shard-local when its live home (if any) and every
        # destination cell of its reports in this run agree on one shard.
        touched: dict[int, set[int]] = {}
        for report in run:
            touched.setdefault(report.oid, set()).add(
                self._shard_id_of(report.x, report.y))
        cross_shard: set[int] = set()
        for oid, dests in touched.items():
            home = self._live_home(oid)
            if home is not None:
                dests = dests | {home}
            if len(dests) > 1:
                cross_shard.add(oid)
        per_shard: dict[int, list[ReportLike]] = {}
        for report in run:
            if report.oid in cross_shard:
                self._route_report(report.oid, report.x, report.y, report.t)
            else:
                sid = self._shard_id_of(report.x, report.y)
                per_shard.setdefault(sid, []).append(report)
                self._home[report.oid] = sid
        if not per_shard:
            return
        # Every shard clock already sits at the run maximum, so the
        # per-shard dispatch skips the advance and goes straight to the
        # cell-grouped ingest body.  Ingestion mutates, so it never
        # retries and ignores the breaker state: a half-applied batch
        # must surface, not be papered over.
        items = sorted(per_shard.items())
        if len(items) == 1 or getattr(self._executor, "remote", False):
            for sid, sub_run in items:
                self._shards[sid]._ingest_run_reports(sub_run)
            return
        self._executor.map(
            lambda item: self._shards[item[0]]._ingest_run_reports(item[1]),
            items)

    def close_object(self, oid: int, t: int) -> bool:
        """Finalise an object's current entry at end time ``t``."""
        self._check_open()
        self.advance_time(t)
        home = self._live_home(oid)
        if home is None:
            return False
        # Let the shard validate first: a rejected close must not drop
        # the engine's home-map entry for a still-live current record.
        closed = self._shards[home].close_object(oid, t)
        self._mutated = True
        self._home.pop(oid, None)
        return closed

    def delete(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> bool:
        """Delete one specific entry from the shard owning its cell."""
        self._check_open()
        sid = self._shard_id_of(x, y)
        if not self._shards[sid].delete(oid, x, y, s, d):
            return False
        self._mutated = True
        if d is None and self._home.get(oid) == sid \
                and oid not in self._shards[sid]._current:
            del self._home[oid]
        return True

    def set_retention(self, oid: int, retention: int | None) -> None:
        """Per-object retention override, applied to every shard."""
        self._check_open()
        self._mutated = True
        for shard in self._shards:
            shard.set_retention(oid, retention)

    def retention_of(self, oid: int) -> int:
        """The object's retention time (defaults to the window size)."""
        self._check_open()
        return self._shards[0].retention_of(oid)

    def forget_object(self, oid: int) -> int:
        """Delete every queriable entry of one object across all shards."""
        self._check_open()
        self._mutated = True
        deleted = sum(shard.forget_object(oid) for shard in self._shards)
        self._home.pop(oid, None)
        return deleted

    # -- coordinated sliding window --------------------------------------------

    def advance_time(self, now: int) -> None:
        """Advance every shard's clock in lockstep.

        Drop epochs are a pure function of the clock, so advancing all
        shards to the same time makes the wholesale tree drop fire
        consistently across the pool — a query fanning out immediately
        afterwards sees the same window boundary on every shard.
        """
        self._check_open()
        if now < self._clock:
            raise ValueError(f"clock cannot move backwards "
                             f"({now} < {self._clock})")
        if now == self._clock and all(shard.now == now
                                      for shard in self._shards):
            return
        self._mutated = True
        if now != self._clock:
            # Queriable period changed: no engine-level plan survives a
            # slide (entries are clock-fenced besides, see PlanCache).
            self._plans.invalidate()
        for shard in self._shards:
            shard.advance_time(now)
        self._clock = now

    # -- queries ---------------------------------------------------------------

    def _plan_for(self, t_lo: int, t_hi: int, window: int | None,
                  stats: QueryStats) -> QueryPlan | None:
        """Resolve one query plan at the engine front end.

        Temporal classification and the plan depend only on (config,
        clock, interval) — shared by every shard in lockstep — so the
        engine derives the plan **once** per temporal signature, caches
        it, and fans out only the per-cell search.  The same immutable
        plan object is shipped to every shard task, including *retried*
        tasks: a retry re-enters ``_query_area_planned`` with the
        original plan instead of re-deriving it (and, on the process
        path, instead of re-running the whole public query), so retries
        cannot skew the classification work or double-derive state.
        Returns ``None`` when no s-partition column qualifies.
        """
        entry = self._plans.lookup(t_lo, t_hi, window, self._clock)
        if entry is not None:
            stats.plan_cache_hits += 1
            return entry.plan
        columns = classify_interval(self.config, self._clock, t_lo, t_hi,
                                    window)
        if not columns:
            return None
        plan = build_query_plan(self.config, self._clock, columns, t_lo,
                                t_hi, window)
        self._plans.store(plan, t_lo, t_hi, window)
        return plan

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None, *,
                        strict: bool = True) -> QueryResult:
        """All entries within ``area`` valid at timestamp ``t``."""
        return self.query_interval(area, t, t, window, strict=strict)

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None, *,
                       strict: bool = True) -> QueryResult:
        """Scatter-gather interval query over the overlapping shards.

        ``strict=True`` (default) raises :class:`ShardQueryError` if any
        shard fails after retries; ``strict=False`` returns a
        :class:`PartialResult` covering the surviving shards, with the
        failures listed and ``stats.degraded`` set.
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        merged = QueryResult() if strict else PartialResult()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return merged
        # One plan for the whole fan-out — local threads, process
        # workers and retried tasks all evaluate the same frozen object
        # (it is picklable, so the process path no longer re-derives
        # classification on every attempt).
        plan = self._plan_for(t_lo, t_hi, window, merged.stats)
        if plan is None:
            return merged
        successes, failures = self._fan_out_query(
            shard_ids, "_query_area_planned", (area, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, result in successes:
            merged.merge(result)
        if failures:
            assert isinstance(merged, PartialResult)
            merged.failures.extend(failures)
            merged.stats.degraded = True
        return merged

    def query_interval_many(self, areas: Iterable[Rect], t_lo: int,
                            t_hi: int, window: int | None = None, *,
                            strict: bool = True) -> MultiQueryResult:
        """Batched multi-rectangle scatter-gather interval query.

        Equivalent to one :meth:`query_interval` per rectangle, but the
        whole batch shares one plan and one fan-out: every overlapping
        shard receives the full rectangle list and evaluates it with
        shared per-cell descents
        (:meth:`SWSTIndex._query_area_planned_many`).

        With ``strict=False`` the per-rectangle results are
        :class:`PartialResult` objects; a failed shard is attributed to
        exactly the rectangles whose area it overlaps (other rectangles
        stay complete).
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        areas = list(areas)
        results: list[QueryResult] = [
            QueryResult() if strict else PartialResult() for _ in areas]
        batch = MultiQueryResult(results=results)
        if not areas:
            return batch
        rect_shards = [self._shards_for_area(area) for area in areas]
        shard_ids = sorted({sid for sids in rect_shards for sid in sids})
        if not shard_ids:
            return batch
        plan = self._plan_for(t_lo, t_hi, window, batch.stats)
        if plan is None:
            return batch
        successes, failures = self._fan_out_query(
            shard_ids, "_query_area_planned_many", (areas, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, shard_batch in successes:
            for result, shard_result in zip(results, shard_batch.results,
                                            strict=True):
                result.merge(shard_result)
            batch.stats.merge(shard_batch.stats)
        if failures:
            for idx, sids in enumerate(rect_shards):
                overlapping = [failure for failure in failures
                               if failure.shard_id in sids]
                if not overlapping:
                    continue
                result = results[idx]
                assert isinstance(result, PartialResult)
                result.failures.extend(overlapping)
                result.stats.degraded = True
            batch.stats.degraded = True
        return batch

    def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None, *,
                       strict: bool = True) -> tuple[int, QueryStats]:
        """Count qualifying entries without materialising them.

        With ``strict=False`` a failed shard is simply absent from the
        count (``stats.degraded`` is set); callers needing the per-shard
        failure details should use :meth:`query_interval`.
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        total = 0
        stats = QueryStats()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return total, stats
        plan = self._plan_for(t_lo, t_hi, window, stats)
        if plan is None:
            return total, stats
        successes, failures = self._fan_out_query(
            shard_ids, "_count_area_planned", (area, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, (count, shard_stats) in successes:
            total += count
            stats.merge(shard_stats)
        if failures:
            stats.degraded = True
        return total, stats

    def query_knn(self, x: int, y: int, k: int, t_lo: int,
                  t_hi: int | None = None,
                  window: int | None = None, *,
                  strict: bool = True) -> QueryResult:
        """K nearest entries: every shard returns its local top-k, the
        engine keeps the global k best (ties by object id and start)."""
        self._check_open()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self.config.space.contains(x, y):
            raise ValueError(f"query point ({x}, {y}) outside the domain")
        if t_hi is not None and t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        merged = QueryResult() if strict else PartialResult()
        candidates: list[tuple[tuple[int, int, int], Entry]] = []
        shard_ids = list(range(self.n_shards))
        successes, failures = self._fan_out_query(
            shard_ids, "query_knn", (x, y, k, t_lo, t_hi, window))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, result in successes:
            merged.stats.merge(result.stats)
            for entry in result.entries:
                dist2 = (entry.x - x) ** 2 + (entry.y - y) ** 2
                candidates.append(((dist2, entry.oid, entry.s), entry))
        candidates.sort(key=lambda item: item[0])
        merged.entries.extend(entry for _, entry in candidates[:k])
        if failures:
            assert isinstance(merged, PartialResult)
            merged.failures.extend(failures)
            merged.stats.degraded = True
        return merged

    def density_grid(self, area: Rect, t: int,
                     window: int | None = None) -> dict[tuple[int, int],
                                                        int]:
        """Distinct objects per grid cell valid at time ``t``."""
        self._check_open()
        result = self.query_timeslice(area, t, window)
        density: dict[tuple[int, int], set[int]] = {}
        for entry in result:
            cell = self.grid.cell_of(entry.x, entry.y)
            density.setdefault(cell, set()).add(entry.oid)
        counts = {cell: len(oids) for cell, oids in density.items()}
        for cell_overlap in self.grid.overlapping_cells(area):
            counts.setdefault((cell_overlap.cx, cell_overlap.cy), 0)
        return counts

    def object_history(self, oid: int, t_lo: int | None = None,
                       t_hi: int | None = None,
                       window: int | None = None) -> list[Entry]:
        """The object's trajectory within the (logical) window."""
        self._check_open()
        q_lo, q_hi = self.config.queriable_period(self._clock, window)
        t_lo = q_lo if t_lo is None else t_lo
        t_hi = q_hi if t_hi is None else t_hi
        result = self.query_interval(self.config.space, t_lo, t_hi, window)
        return sorted((e for e in result if e.oid == oid),
                      key=lambda e: e.s)

    # -- introspection ---------------------------------------------------------

    def scan(self) -> Iterator[Entry]:
        """Yield every physically stored entry (diagnostics/tests only)."""
        self._check_open()
        for shard in self._shards:
            yield from shard.scan()

    def check_integrity(self) -> None:
        """Per-shard invariants plus the engine's own placement invariants."""
        self._check_open()
        for shard_id, shard in enumerate(self._shards):
            shard.check_integrity()
            if shard.now != self._clock:
                raise AssertionError(
                    f"shard {shard_id} clock {shard.now} != engine clock "
                    f"{self._clock}")
            for (cx, cy), trees in shard._trees.items():
                if any(tree is not None for tree in trees) \
                        and self.shard_map.shard_of_cell(cx, cy) != shard_id:
                    raise AssertionError(
                        f"cell ({cx}, {cy}) stored in shard {shard_id}, "
                        f"owned by shard "
                        f"{self.shard_map.shard_of_cell(cx, cy)}")
            for oid in shard._current:
                if self._home.get(oid) != shard_id:
                    raise AssertionError(
                        f"object {oid} current in shard {shard_id} but "
                        f"home map says {self._home.get(oid)}")

    # -- persistence -----------------------------------------------------------

    def save(self) -> None:
        """Persist the whole directory as one two-phase epoch commit.

        Protocol (each file step durable: fsync + directory fsync):

        1. **PREPARE** — atomically write ``engine.prepare.json``
           recording the next epoch and the exact header generation each
           shard's pager will reach when its commit lands (derived from
           the storage layer's deterministic commit arithmetic: one
           commit for the sync, plus one if this session's dirty mark is
           still pending).
        2. **COMMIT** — save every shard (catalog write + page flush +
           header sync), in shard order.
        3. **FLIP** — atomically rewrite the manifest with the new epoch
           and the observed generations, then unlink the marker.
        4. **SNAPSHOT** (``snapshots=True`` engines) — CoW-copy the
           just-committed shard files into ``snapshots/<new epoch>/``
           and prune older epochs' snapshots.

        The snapshot runs *after* the commit, while every page file is
        provably clean — a pre-save copy could capture uncommitted
        pages the buffer pool evicted over the committed state during
        normal mutation, and restoring such a copy reproduces the
        corruption instead of undoing it.  A crash anywhere in the
        protocol leaves a directory that ``open()`` classifies
        deterministically from the marker: roll back (no shard
        committed), roll forward (all did), or — for the middle window
        of mixed in-place commits — restore every shard from the
        previous epoch's snapshot and roll back.  Without a snapshot
        that middle is unrecoverable and raises a typed
        :class:`EpochTornError`.  A crash after the flip at worst loses
        the new epoch's snapshot, which ``open()`` rewrites.

        Memory-backed engines and legacy v1 shard files skip the
        protocol and save each shard directly (no generations to
        record).
        """
        self._check_open()
        if self._dir is None \
                or any(shard.pager.format_version != 2
                       for shard in self._shards):
            for shard in self._shards:
                shard.save()
            self._mutated = False
            return
        next_epoch = self._epoch + 1
        expected = [shard.pager.generation
                    + (1 if shard.pager.session_marked else 2)
                    for shard in self._shards]
        self._write_json_atomic(
            self._prepare_path(),
            {"format": _MANIFEST_FORMAT, "epoch": next_epoch,
             "n_shards": self.n_shards, "expected": expected})
        for shard in self._shards:
            shard.save()
        gens = [shard.pager.generation for shard in self._shards]
        self._write_json_atomic(
            self._manifest_path(),
            {"format": _MANIFEST_FORMAT, "n_shards": self.n_shards,
             "epoch": next_epoch, "shards": gens,
             "generation": self._generation})
        self._fops.unlink(self._prepare_path())
        assert self._dir is not None
        self._fops.fsync_dir(self._dir)
        self._epoch = next_epoch
        self._mutated = False
        if self._snapshots:
            self._write_epoch_snapshot()
            self._prune_snapshots(keep_epoch=next_epoch)

    def _snapshot_root(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, _SNAPSHOTS_DIR)

    def _ensure_snapshot(self) -> None:
        """Write ``snapshots/<epoch>/`` when absent or incomplete.

        Runs at construction and after every successful ``open()`` —
        the two other moments (besides a completed save) when every
        shard file is provably clean-committed.  Covers directories
        saved before snapshots existed, a crash between the manifest
        flip and the snapshot step, and a freshly resharded or
        rolled-forward directory.  Copies are atomic, so presence of
        all ``n_shards`` files means the snapshot is whole.
        """
        assert self._dir is not None
        snap = snapshot_dir(self._dir, self._epoch)
        if all(os.path.exists(os.path.join(snap, _shard_file_name(sid)))
               for sid in range(self.n_shards)):
            return
        self._write_epoch_snapshot()

    def _write_epoch_snapshot(self) -> None:
        """CoW-copy every shard file into ``snapshots/<epoch>/``.

        Only runs while every page file is clean-committed (right
        after a save, at open, at construction), so the copies freeze
        exactly the committed state of ``self._epoch``.  A later save
        torn between in-place shard commits — or a mid-session crash
        that left uncommitted evicted pages over a committed file —
        restores every shard from here (:meth:`_restore_snapshot`)
        instead of raising :class:`EpochTornError` or refusing to
        open.
        """
        assert self._dir is not None
        fops = self._fops
        snap_root = self._snapshot_root()
        snap = snapshot_dir(self._dir, self._epoch)
        fops.mkdir(snap_root)
        fops.mkdir(snap)
        for shard_id in range(self.n_shards):
            fops.copy_file(self.shard_path(shard_id),
                           os.path.join(snap, _shard_file_name(shard_id)))
        fops.fsync_dir(snap)
        fops.fsync_dir(snap_root)
        fops.fsync_dir(self._dir)

    def _prune_snapshots(self, keep_epoch: int) -> None:
        """Drop snapshot directories of epochs older than ``keep_epoch``.

        Runs after the flip committed, so a crash anywhere in here costs
        only disk space — stale directories are re-pruned by the next
        save.
        """
        snap_root = self._snapshot_root()
        try:
            names = sorted(os.listdir(snap_root))
        except OSError:
            return
        fops = self._fops
        pruned = False
        for name in names:
            if not name.isdigit() or int(name) >= keep_epoch:
                continue
            stale = os.path.join(snap_root, name)
            for file_name in sorted(os.listdir(stale)):
                fops.unlink(os.path.join(stale, file_name))
            fops.rmdir(stale)
            pruned = True
        if pruned:
            fops.fsync_dir(snap_root)

    @classmethod
    def open(cls, path: str, config: SWSTConfig,
             executor: Executor | None = None, *,
             retry_policy: RetryPolicy | None = None,
             breaker_factory: Callable[[], CircuitBreaker] | None
             = CircuitBreaker,
             task_timeout: float | None = None,
             file_ops: FileOps | None = None,
             snapshots: bool = True) -> "ShardedEngine":
        """Re-open a saved shard directory, recovering it as one unit.

        A leftover PREPARE marker (crashed save) is resolved *before*
        any shard opens: the marker's expected generations are compared
        against each shard's committed header generation — probed
        passively, without opening (opening itself commits a header) —
        and the directory rolls back, rolls forward, restores the
        committed shards from the epoch's CoW snapshot (mixed commits
        with a complete ``snapshots/<epoch>/``), or raises a typed
        :class:`EpochTornError`.  Then each shard runs the storage
        layer's full recovery-on-open; the first shard that fails raises
        :class:`ShardOpenError` naming it.  Under a format-2 manifest
        the shards must agree on one clock and sit at or above their
        recorded generations — disagreement means the directory mixes
        snapshots and is refused with a typed error rather than
        heuristically resynchronised.  Format-1 directories keep the
        legacy behaviour (newest-shard clock resync).
        """
        engine = cls.__new__(cls)
        engine.config = config
        engine._init_common(executor, retry_policy, breaker_factory,
                            task_timeout, file_ops)
        engine._snapshots = snapshots
        engine._dir = os.fspath(path)
        engine._shards = []
        try:
            manifest = load_manifest(
                os.path.join(engine._dir, _MANIFEST_NAME))
            if manifest["n_shards"] != config.n_shards:
                raise EngineError(
                    f"directory {engine._dir!r} holds "
                    f"{manifest['n_shards']} shards but config.n_shards "
                    f"is {config.n_shards}")
            engine._generation = manifest["generation"]
            # Marker recovery runs for *both* formats: a crashed save
            # from a legacy directory leaves a marker next to a still-
            # format-1 manifest (the flip is what upgrades it).
            manifest = engine._recover_epoch(manifest)
            if manifest["format"] >= 2:
                engine._open_shards_v2(manifest)
                if snapshots and all(shard.pager.format_version == 2
                                     for shard in engine._shards):
                    engine._ensure_snapshot()
            else:
                engine._open_shards_legacy()
        except BaseException:
            engine._abandon()
            raise
        return engine

    def _recover_epoch(self, manifest: dict[str, Any]) -> dict[str, Any]:
        """Resolve a leftover PREPARE marker; returns the manifest to use.

        Classification against the marker's expected generations:

        * marker epoch == manifest epoch: the flip landed, only the
          marker cleanup was lost — finish it.
        * no shard reached its expected generation: nothing committed,
          the old snapshot is intact — **roll back** (drop the marker).
        * every shard reached it: the save fully committed, only the
          flip was lost — **roll forward** (rewrite the manifest).
        * anything in between: the in-place storage layer cannot undo a
          committed shard, so the directory mixes epochs.  When the
          save left a complete CoW snapshot of the old epoch, the
          committed shards are **restored** from it and the whole
          directory rolls back; otherwise raise
          :class:`EpochTornError`.
        """
        prepare = _load_prepare(self._prepare_path())
        if prepare is None:
            return manifest
        if prepare["n_shards"] != self.n_shards:
            raise EngineError(
                f"save marker in {self._dir!r} records "
                f"{prepare['n_shards']} shards but the manifest holds "
                f"{self.n_shards}")
        epoch: int = manifest["epoch"]
        if prepare["epoch"] == epoch:
            self._fops.unlink(self._prepare_path())
            assert self._dir is not None
            self._fops.fsync_dir(self._dir)
            return manifest
        if prepare["epoch"] != epoch + 1:
            raise EngineError(
                f"save marker epoch {prepare['epoch']} is inconsistent "
                f"with manifest epoch {epoch} in {self._dir!r} "
                f"(external tampering?)")
        observed, committed, pending = probe_prepare_state(
            prepare, [self.shard_path(sid) for sid in range(self.n_shards)])
        assert self._dir is not None
        if len(committed) == self.n_shards:
            gens = [gen if gen is not None else 0 for gen in observed]
            rolled = {"format": _MANIFEST_FORMAT,
                      "n_shards": self.n_shards,
                      "epoch": prepare["epoch"], "shards": gens,
                      "generation": self._generation}
            self._write_json_atomic(self._manifest_path(), rolled)
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
            return rolled
        if not committed:
            # Even with no shard committed, the crashed save's write
            # window may have evicted uncommitted pages over the
            # committed snapshot in place (the storage layer's sweep
            # refuses such a file); restoring from the epoch snapshot —
            # when one exists — makes the rollback exact regardless.
            self._restore_snapshot(epoch)
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
            return manifest
        if self._restore_snapshot(epoch):
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
            return manifest
        raise EpochTornError(prepare["epoch"], committed, pending)

    def _restore_snapshot(self, epoch: int) -> bool:
        """Roll every shard back to its ``snapshots/<epoch>/`` copy.

        Returns False (directory untouched) unless the snapshot holds a
        copy for *every* shard — a partial restore would just move the
        tear.  All shards are restored, not only the ones that committed
        the interrupted epoch: a shard that never committed may still
        have had uncommitted pages evicted over its committed state in
        place, which the storage layer's recovery sweep refuses to open.
        Each restore is an atomic durable copy, so a crash mid-restore
        re-enters recovery and converges.
        """
        assert self._dir is not None
        snap = snapshot_dir(self._dir, epoch)
        sources = {sid: os.path.join(snap, _shard_file_name(sid))
                   for sid in range(self.n_shards)}
        if not all(os.path.exists(source) for source in sources.values()):
            return False
        fops = self._fops
        for sid, source in sources.items():
            fops.copy_file(source, self.shard_path(sid))
        fops.fsync_dir(generation_dir(self._dir, self._generation))
        return True

    def _open_shard_files(self) -> None:
        """Open every shard file; on failure close what was opened."""
        opened: list[SWSTIndex] = []
        try:
            for shard_id in range(self.n_shards):
                shard_path = self.shard_path(shard_id)
                try:
                    opened.append(SWSTIndex.open(shard_path, self.config))
                except Exception as exc:
                    raise ShardOpenError(shard_id, shard_path,
                                         exc) from exc
        except BaseException:
            for shard in opened:
                with contextlib.suppress(StorageError, OSError):
                    shard.close()
            raise
        self._shards.extend(opened)

    def _open_shards_v2(self, manifest: dict[str, Any]) -> None:
        """Open every shard and verify it sits at the manifest epoch.

        A shard that refuses to open — typically a mid-session crash
        after the buffer pool evicted uncommitted pages over the
        committed state in place, which the storage layer's recovery
        sweep rejects — is retried once after restoring *every* shard
        from the committed epoch's CoW snapshot.  The snapshot was
        written while the files were clean, so the retry reopens the
        exact last-saved state; without a usable snapshot the original
        :class:`ShardOpenError` propagates.
        """
        try:
            try:
                self._open_shard_files()
            except ShardOpenError:
                if not self._snapshots \
                        or not self._restore_snapshot(manifest["epoch"]):
                    raise
                self._open_shard_files()
        except BaseException:
            self._abandon()
            raise
        gens: list[int] = manifest["shards"]
        for shard_id, shard in enumerate(self._shards):
            if shard.pager.format_version == 2 \
                    and shard.pager.generation < gens[shard_id]:
                raise EngineError(
                    f"shard {shard_id} is behind the manifest: committed "
                    f"generation {shard.pager.generation} < recorded "
                    f"{gens[shard_id]} (page file replaced or restored "
                    f"from an older backup?)")
        clocks = {shard.now for shard in self._shards}
        if len(clocks) > 1:
            raise EngineError(
                f"shard clocks disagree under manifest epoch "
                f"{manifest['epoch']}: {sorted(clocks)}; the directory "
                f"mixes snapshots (restore from backup)")
        self._clock = self._shards[0].now
        self._epoch = manifest["epoch"]
        self._mutated = False
        self._rebuild_home()

    def _open_shards_legacy(self) -> None:
        """Format-1 open: per-shard recovery plus heuristic clock resync.

        A crash between the old per-shard saves can leave a lagging
        shard, whose pending window drops then fire here.  The first
        ``save()`` upgrades the directory to the epoch protocol.
        """
        try:
            for shard_id in range(self.n_shards):
                shard_path = self.shard_path(shard_id)
                try:
                    self._shards.append(
                        SWSTIndex.open(shard_path, self.config))
                except Exception as exc:
                    raise ShardOpenError(shard_id, shard_path, exc) from exc
        except BaseException:
            self._abandon()
            raise
        self._clock = max(shard.now for shard in self._shards)
        lagging = any(shard.now != self._clock for shard in self._shards)
        for shard in self._shards:
            shard.advance_time(self._clock)
        self._mutated = lagging
        self._epoch = 0
        self._rebuild_home()

    def _rebuild_home(self) -> None:
        """Rebuild the oid -> home-shard map from shard current tables."""
        for shard_id, shard in enumerate(self._shards):
            for oid, (_, _, s) in shard.current_objects().items():
                other = self._home.get(oid)
                if other is None or \
                        self._shards[other]._current[oid][2] < s:
                    self._home[oid] = shard_id

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    def close(self) -> None:
        """Close every shard and (if owned) the executor.

        Every resource is closed even if an earlier one fails.  A single
        failure re-raises as itself; several raise an
        :class:`EngineCloseError` aggregate listing all of them (first
        chained as ``__cause__``), so no error is silently dropped.
        """
        if self._closed:
            return
        self._closed = True
        errors: list[BaseException] = []
        for shard in self._shards:
            try:
                shard.close()
            except BaseException as exc:
                errors.append(exc)
        if self._owns_executor:
            try:
                self._executor.close()
            except BaseException as exc:
                errors.append(exc)
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise EngineCloseError(errors) from errors[0]

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
