"""Sharded scatter-gather engine over independent SWST index shards.

:class:`ShardedEngine` partitions the spatial grid's cell space across
``config.n_shards`` independent :class:`~repro.core.index.SWSTIndex`
instances — each with its own page file, pager, buffer pool and
decoded-node cache — using the deterministic
:class:`~repro.engine.sharding.GridShardMap`.  Because the SWST layers
share nothing between spatial cells, a shard holds exactly the B+ trees
and memos of the cells it owns, and:

* every insert routes to exactly one shard (the owner of the report's
  cell),
* every range query fans out only to the shards owning cells that
  overlap the query rectangle, scatter-gather over a pluggable
  :class:`~repro.engine.executor.Executor`, merging per-shard
  :class:`~repro.core.results.QueryResult`/``QueryStats``,
* the sliding window is *coordinated*: the engine advances every
  shard's clock in lockstep, so the wholesale tree-drop epoch (stream
  time crossing a multiple of ``Wmax``) fires consistently across the
  pool.

The engine owns the cross-shard part of the current-entry protocol: an
object's consecutive reports may land in cells owned by different
shards, in which case the previous shard finalises the old current
entry while the new shard receives the fresh one.  A single-shard
engine degenerates to byte-identical behaviour — same entries, same
query results, same logical node-access counts — as a plain
``SWSTIndex`` fed the same stream.

On disk an engine is a *directory*::

    index.d/
      engine.json        # manifest: {"format": 1, "n_shards": N}
      shard-000.pages    # one crash-safe format-v2 page file per shard
      shard-001.pages
      ...

``save()`` persists every shard's catalog; ``open()`` re-opens the
directory, running the storage layer's recovery-on-open for every
shard, and wraps the first failure in a typed
:class:`~repro.engine.errors.ShardOpenError` naming the damaged shard.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Iterable, Iterator

from ..core.config import SWSTConfig
from ..core.grid import SpatialGrid
from ..core.index import SWSTIndex
from ..core.overlap import classify_interval
from ..core.records import Entry, Rect, ReportLike
from ..core.results import QueryResult, QueryStats
from ..storage.errors import StorageError
from ..storage.pager import MEMORY
from ..storage.stats import IOStats
from .errors import EngineClosedError, EngineError, ShardOpenError
from .executor import Executor, ThreadedExecutor
from .sharding import GridShardMap

_MANIFEST_NAME = "engine.json"
_MANIFEST_FORMAT = 1


def _shard_file_name(shard_id: int) -> str:
    return f"shard-{shard_id:03d}.pages"


def _open_and_call(task: tuple[str, SWSTConfig, str, tuple[Any, ...]]
                   ) -> Any:
    """Out-of-process task: reopen one saved shard and run one method.

    Used by remote (process-pool) executors, which cannot reach the
    parent's live shard objects.  The shard is opened read-only in
    practice: query methods never mutate, so the pager commits nothing.
    """
    path, config, method, args = task
    with SWSTIndex.open(path, config) as shard:
        return getattr(shard, method)(*args)


class ShardedEngine:
    """Scatter-gather front end over ``config.n_shards`` SWST shards.

    Args:
        config: index parameters; ``config.n_shards`` fixes the shard
            count (the default config is a single shard).
        path: shard directory, or ``":memory:"`` (default) for an
            all-in-memory engine (each shard on its own memory device).
        executor: worker pool for scatter-gather; defaults to a
            :class:`~repro.engine.executor.ThreadedExecutor` sized to
            the shard count.  A caller-supplied executor is *borrowed*
            (``close()`` leaves it running); the default one is owned
            and shut down with the engine.

    The engine exposes the full ``SWSTIndex`` query surface
    (``query_timeslice``, ``query_interval``, ``count_interval``,
    ``query_knn``, ``density_grid``, ``object_history``,
    ``forget_object``, ``set_retention``) plus the ingestion API
    (``insert``, ``report``, ``extend``, ``close_object``, ``delete``,
    ``advance_time``).  It is not itself thread-safe for concurrent
    callers; internal parallelism only ever touches disjoint shards.
    """

    def __init__(self, config: SWSTConfig | None = None,
                 path: str = MEMORY,
                 executor: Executor | None = None) -> None:
        self.config = config if config is not None else SWSTConfig()
        self._init_common(executor)
        self._dir: str | None = None
        if os.fspath(path) != MEMORY:
            self._dir = os.fspath(path)
            self._prepare_directory()
        self._shards: list[SWSTIndex] = []
        try:
            for shard_id in range(self.n_shards):
                self._shards.append(
                    SWSTIndex(self.config, self.shard_path(shard_id)))
        except BaseException:
            self._abandon()
            raise

    def _init_common(self, executor: Executor | None) -> None:
        self.grid = SpatialGrid(self.config.space, self.config.x_partitions,
                                self.config.y_partitions)
        self.shard_map = GridShardMap(self.config.x_partitions,
                                      self.config.y_partitions,
                                      self.config.n_shards)
        if executor is None:
            self._executor: Executor = ThreadedExecutor(
                max_workers=self.config.n_shards)
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False
        self._home: dict[int, int] = {}
        self._clock = 0
        self._mutated = False
        self._closed = False

    # -- directory layout -----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def directory(self) -> str | None:
        """Shard directory path (``None`` for an in-memory engine)."""
        return self._dir

    def shard_path(self, shard_id: int) -> str:
        """Page-file path of one shard (``":memory:"`` when memory-backed)."""
        if self._dir is None:
            return MEMORY
        return os.path.join(self._dir, _shard_file_name(shard_id))

    def _manifest_path(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, _MANIFEST_NAME)

    def _prepare_directory(self) -> None:
        assert self._dir is not None
        if os.path.exists(self._dir) and not os.path.isdir(self._dir):
            raise EngineError(f"engine path {self._dir!r} exists and is "
                              f"not a directory")
        os.makedirs(self._dir, exist_ok=True)
        manifest_path = self._manifest_path()
        if os.path.exists(manifest_path):
            manifest = self._load_manifest(manifest_path)
            if manifest["n_shards"] != self.n_shards:
                raise EngineError(
                    f"directory {self._dir!r} holds {manifest['n_shards']} "
                    f"shards but config.n_shards is {self.n_shards}")
            return
        self._write_manifest(manifest_path)

    def _write_manifest(self, manifest_path: str) -> None:
        blob = json.dumps({"format": _MANIFEST_FORMAT,
                           "n_shards": self.n_shards}) + "\n"
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, manifest_path)

    @staticmethod
    def _load_manifest(manifest_path: str) -> dict[str, Any]:
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise EngineError(f"cannot read engine manifest "
                              f"{manifest_path!r}: {exc}") from exc
        if not isinstance(manifest, dict) \
                or manifest.get("format") != _MANIFEST_FORMAT \
                or not isinstance(manifest.get("n_shards"), int):
            raise EngineError(f"engine manifest {manifest_path!r} is not a "
                              f"format-{_MANIFEST_FORMAT} manifest")
        return manifest

    def _abandon(self) -> None:
        """Close whatever was built so far after a failed init/open."""
        self._closed = True
        for shard in getattr(self, "_shards", []):
            # Best-effort: a shard whose close fails (its device already
            # torn down) must not mask the original init/open error.
            with contextlib.suppress(StorageError, OSError, ValueError):
                shard.close()
        if self._owns_executor:
            self._executor.close()

    # -- properties ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current stream time τ (shared by every shard)."""
        return self._clock

    def __len__(self) -> int:
        """Physically stored entries across every shard."""
        return sum(len(shard) for shard in self._shards)

    @property
    def shards(self) -> tuple[SWSTIndex, ...]:
        """The shard indexes, in shard-id order (diagnostics/tests)."""
        return tuple(self._shards)

    @property
    def stats(self) -> IOStats:
        """Aggregate IO counters across every shard (a fresh snapshot).

        Unlike ``SWSTIndex.stats`` this is not a live object — call again
        for updated totals.  ``snapshot()``/``diff()`` work as usual, so
        the engine drops into harness code written for a single index.
        """
        total = IOStats()
        for shard in self._shards:
            snap = shard.stats.snapshot()
            for name in vars(snap):
                setattr(total, name, getattr(total, name) + getattr(snap,
                                                                    name))
        return total

    def shard_stats(self) -> list[IOStats]:
        """Per-shard IO counter snapshots, in shard-id order."""
        return [shard.stats.snapshot() for shard in self._shards]

    def node_count(self) -> int:
        """Total B+ tree pages across every shard."""
        return sum(shard.node_count() for shard in self._shards)

    def current_objects(self) -> dict[int, tuple[int, int, int]]:
        """Merged current-entry table: oid -> (x, y, s)."""
        merged: dict[int, tuple[int, int, int]] = {}
        for shard in self._shards:
            merged.update(shard.current_objects())
        return merged

    # -- routing helpers -------------------------------------------------------

    def _shard_id_of(self, x: int, y: int) -> int:
        cx, cy = self.grid.cell_of(x, y)
        return self.shard_map.shard_of_cell(cx, cy)

    def _shards_for_area(self, area: Rect) -> list[int]:
        """Sorted ids of the shards owning cells that overlap ``area``."""
        ids: set[int] = set()
        for cell in self.grid.overlapping_cells(area):
            ids.add(self.shard_map.shard_of_cell(cell.cx, cell.cy))
            if len(ids) == self.n_shards:
                break
        return sorted(ids)

    def _live_home(self, oid: int) -> int | None:
        """Shard currently holding ``oid``'s current entry, if any.

        The home map is maintained eagerly on routing but window drops
        remove current entries shard-side; stale homes are reaped here.
        """
        home = self._home.get(oid)
        if home is None:
            return None
        if oid not in self._shards[home]._current:
            del self._home[oid]
            return None
        return home

    def _fan_out(self, shard_ids: list[int], method: str,
                 args: tuple[Any, ...]) -> list[Any]:
        """Scatter one read-only method over ``shard_ids``, gather results."""
        if getattr(self._executor, "remote", False):
            if self._dir is None:
                raise EngineError(
                    "a remote (process) executor needs a disk-backed "
                    "engine; this one is in-memory")
            if self._mutated:
                raise EngineError(
                    "a remote (process) executor reopens shards from "
                    "disk; call save() after mutating the engine")
            import dataclasses
            config = dataclasses.replace(self.config, device_factory=None)
            tasks = [(self.shard_path(sid), config, method, args)
                     for sid in shard_ids]
            return self._executor.map(_open_and_call, tasks)
        if len(shard_ids) == 1:
            sid = shard_ids[0]
            return [getattr(self._shards[sid], method)(*args)]
        return self._executor.map(
            lambda sid: getattr(self._shards[sid], method)(*args),
            shard_ids)

    # -- insertion and updates -------------------------------------------------

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert an entry; ``d=None`` inserts a *current* entry.

        Same contract as :meth:`SWSTIndex.insert` — ordered stream, one
        live current entry per object — with routing and the cross-shard
        current protocol handled by the engine.
        """
        self._check_open()
        if not self.config.space.contains(x, y):
            raise ValueError(f"location ({x}, {y}) outside the spatial "
                             f"domain {self.config.space}")
        if s < self._clock:
            raise ValueError(f"out-of-order start timestamp {s} < current "
                             f"time {self._clock}")
        if d is not None and d < 1:
            raise ValueError(f"duration must be >= 1, got {d}")
        self.advance_time(s)
        if d is not None:
            self._shards[self._shard_id_of(x, y)].insert(oid, x, y, s, d)
            return
        self._route_report(oid, x, y, s)

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report of a moving object (alias of a current insert)."""
        self.insert(oid, x, y, t, None)

    def _route_report(self, oid: int, x: int, y: int, s: int) -> None:
        """Current-entry protocol across shards, clock already advanced.

        Mirrors the single-index protocol exactly: a re-report at the
        same timestamp replaces the current entry (position correction);
        otherwise the previous current entry — wherever it lives — is
        finalised with its real duration before the new one is inserted
        into the destination shard.
        """
        self._mutated = True
        home = self._live_home(oid)
        dest_id = self._shard_id_of(x, y)
        dest = self._shards[dest_id]
        if home is not None:
            home_shard = self._shards[home]
            px, py, ps = home_shard._current[oid]
            if ps == s:
                home_shard._physical_delete(Entry(oid, px, py, ps, None))
                del home_shard._current[oid]
            else:
                del home_shard._current[oid]
                home_shard._finalize_current(oid, (px, py, ps), end=s)
        dest._physical_insert(Entry(oid, x, y, s, None))
        dest._current[oid] = (x, y, s)
        self._home[oid] = dest_id

    def extend(self, reports: Iterable[ReportLike],
               batch_size: int = 1024) -> int:
        """Batched ingestion: split per shard and ingest in parallel.

        Reports are consumed in chunks of ``batch_size``; each chunk is
        validated, split into ``Wmax``-epoch runs (window drops only
        fire at epoch boundaries), and every run is partitioned by
        destination shard.  Objects whose reports stay within one shard
        are ingested per shard — in parallel on the engine's executor —
        through the same cell-grouped batch path as
        :meth:`SWSTIndex.extend`; objects whose current entry hops
        between shards take the serial cross-shard protocol first
        (reports of distinct objects commute within a run).

        Returns the number of reports ingested.
        """
        self._check_open()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        count = 0
        batch: list[ReportLike] = []
        for report in reports:
            batch.append(report)
            if len(batch) >= batch_size:
                count += self._extend_batch(batch)
                batch.clear()
        if batch:
            count += self._extend_batch(batch)
        return count

    def _extend_batch(self, batch: list[ReportLike]) -> int:
        clock = self._clock
        for report in batch:
            if not self.config.space.contains(report.x, report.y):
                raise ValueError(f"location ({report.x}, {report.y}) outside "
                                 f"the spatial domain {self.config.space}")
            if report.t < clock:
                raise ValueError(f"out-of-order start timestamp {report.t} "
                                 f"< current time {clock}")
            clock = report.t
        w_max = self.config.w_max
        start = 0
        for idx in range(1, len(batch) + 1):
            if idx == len(batch) \
                    or batch[idx].t // w_max != batch[start].t // w_max:
                self._ingest_run(batch[start:idx])
                start = idx
        return len(batch)

    def _ingest_run(self, run: list[ReportLike]) -> None:
        """One epoch run: serial cross-shard reports, then parallel rest."""
        self.advance_time(run[-1].t)
        self._mutated = True
        # An object is shard-local when its live home (if any) and every
        # destination cell of its reports in this run agree on one shard.
        touched: dict[int, set[int]] = {}
        for report in run:
            touched.setdefault(report.oid, set()).add(
                self._shard_id_of(report.x, report.y))
        cross_shard: set[int] = set()
        for oid, dests in touched.items():
            home = self._live_home(oid)
            if home is not None:
                dests = dests | {home}
            if len(dests) > 1:
                cross_shard.add(oid)
        per_shard: dict[int, list[ReportLike]] = {}
        for report in run:
            if report.oid in cross_shard:
                self._route_report(report.oid, report.x, report.y, report.t)
            else:
                sid = self._shard_id_of(report.x, report.y)
                per_shard.setdefault(sid, []).append(report)
                self._home[report.oid] = sid
        if not per_shard:
            return
        # Every shard clock already sits at the run maximum, so the
        # per-shard dispatch skips the advance and goes straight to the
        # cell-grouped ingest body.
        items = sorted(per_shard.items())
        if len(items) == 1 or getattr(self._executor, "remote", False):
            for sid, sub_run in items:
                self._shards[sid]._ingest_run_reports(sub_run)
            return
        self._executor.map(
            lambda item: self._shards[item[0]]._ingest_run_reports(item[1]),
            items)

    def close_object(self, oid: int, t: int) -> bool:
        """Finalise an object's current entry at end time ``t``."""
        self._check_open()
        self.advance_time(t)
        home = self._live_home(oid)
        if home is None:
            return False
        self._mutated = True
        self._home.pop(oid, None)
        return self._shards[home].close_object(oid, t)

    def delete(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> bool:
        """Delete one specific entry from the shard owning its cell."""
        self._check_open()
        sid = self._shard_id_of(x, y)
        if not self._shards[sid].delete(oid, x, y, s, d):
            return False
        self._mutated = True
        if d is None and self._home.get(oid) == sid \
                and oid not in self._shards[sid]._current:
            del self._home[oid]
        return True

    def set_retention(self, oid: int, retention: int | None) -> None:
        """Per-object retention override, applied to every shard."""
        self._check_open()
        self._mutated = True
        for shard in self._shards:
            shard.set_retention(oid, retention)

    def retention_of(self, oid: int) -> int:
        """The object's retention time (defaults to the window size)."""
        self._check_open()
        return self._shards[0].retention_of(oid)

    def forget_object(self, oid: int) -> int:
        """Delete every queriable entry of one object across all shards."""
        self._check_open()
        self._mutated = True
        deleted = sum(shard.forget_object(oid) for shard in self._shards)
        self._home.pop(oid, None)
        return deleted

    # -- coordinated sliding window --------------------------------------------

    def advance_time(self, now: int) -> None:
        """Advance every shard's clock in lockstep.

        Drop epochs are a pure function of the clock, so advancing all
        shards to the same time makes the wholesale tree drop fire
        consistently across the pool — a query fanning out immediately
        afterwards sees the same window boundary on every shard.
        """
        self._check_open()
        if now < self._clock:
            raise ValueError(f"clock cannot move backwards "
                             f"({now} < {self._clock})")
        if now == self._clock and all(shard.now == now
                                      for shard in self._shards):
            return
        self._mutated = True
        for shard in self._shards:
            shard.advance_time(now)
        self._clock = now

    # -- queries ---------------------------------------------------------------

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None) -> QueryResult:
        """All entries within ``area`` valid at timestamp ``t``."""
        return self.query_interval(area, t, t, window)

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> QueryResult:
        """Scatter-gather interval query over the overlapping shards."""
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        merged = QueryResult()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return merged
        if getattr(self._executor, "remote", False):
            for result in self._fan_out(shard_ids, "query_interval",
                                        (area, t_lo, t_hi, window)):
                merged.merge(result)
            return merged
        # Temporal classification and the query plan depend only on
        # (config, clock, interval) — shared by every shard in lockstep —
        # so compute them once and fan out the per-cell search alone.
        columns = classify_interval(self.config, self._clock, t_lo, t_hi,
                                    window)
        if not columns:
            return merged
        plan = self._shards[0]._query_plan(columns, t_lo, t_hi, window)
        for result in self._fan_out(shard_ids, "_query_area_planned",
                                    (area, plan)):
            merged.merge(result)
        return merged

    def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> tuple[int, QueryStats]:
        """Count qualifying entries without materialising them."""
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        total = 0
        stats = QueryStats()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return total, stats
        if getattr(self._executor, "remote", False):
            for count, shard_stats in self._fan_out(
                    shard_ids, "count_interval", (area, t_lo, t_hi, window)):
                total += count
                stats.merge(shard_stats)
            return total, stats
        columns = classify_interval(self.config, self._clock, t_lo, t_hi,
                                    window)
        if not columns:
            return total, stats
        plan = self._shards[0]._query_plan(columns, t_lo, t_hi, window)
        for count, shard_stats in self._fan_out(
                shard_ids, "_count_area_planned", (area, plan)):
            total += count
            stats.merge(shard_stats)
        return total, stats

    def query_knn(self, x: int, y: int, k: int, t_lo: int,
                  t_hi: int | None = None,
                  window: int | None = None) -> QueryResult:
        """K nearest entries: every shard returns its local top-k, the
        engine keeps the global k best (ties by object id and start)."""
        self._check_open()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self.config.space.contains(x, y):
            raise ValueError(f"query point ({x}, {y}) outside the domain")
        if t_hi is not None and t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)  # validate window
        merged = QueryResult()
        candidates: list[tuple[tuple[int, int, int], Entry]] = []
        shard_ids = list(range(self.n_shards))
        for result in self._fan_out(shard_ids, "query_knn",
                                    (x, y, k, t_lo, t_hi, window)):
            merged.stats.merge(result.stats)
            for entry in result.entries:
                dist2 = (entry.x - x) ** 2 + (entry.y - y) ** 2
                candidates.append(((dist2, entry.oid, entry.s), entry))
        candidates.sort(key=lambda item: item[0])
        merged.entries.extend(entry for _, entry in candidates[:k])
        return merged

    def density_grid(self, area: Rect, t: int,
                     window: int | None = None) -> dict[tuple[int, int],
                                                        int]:
        """Distinct objects per grid cell valid at time ``t``."""
        self._check_open()
        result = self.query_timeslice(area, t, window)
        density: dict[tuple[int, int], set[int]] = {}
        for entry in result:
            cell = self.grid.cell_of(entry.x, entry.y)
            density.setdefault(cell, set()).add(entry.oid)
        counts = {cell: len(oids) for cell, oids in density.items()}
        for cell_overlap in self.grid.overlapping_cells(area):
            counts.setdefault((cell_overlap.cx, cell_overlap.cy), 0)
        return counts

    def object_history(self, oid: int, t_lo: int | None = None,
                       t_hi: int | None = None,
                       window: int | None = None) -> list[Entry]:
        """The object's trajectory within the (logical) window."""
        self._check_open()
        q_lo, q_hi = self.config.queriable_period(self._clock, window)
        t_lo = q_lo if t_lo is None else t_lo
        t_hi = q_hi if t_hi is None else t_hi
        result = self.query_interval(self.config.space, t_lo, t_hi, window)
        return sorted((e for e in result if e.oid == oid),
                      key=lambda e: e.s)

    # -- introspection ---------------------------------------------------------

    def scan(self) -> Iterator[Entry]:
        """Yield every physically stored entry (diagnostics/tests only)."""
        self._check_open()
        for shard in self._shards:
            yield from shard.scan()

    def check_integrity(self) -> None:
        """Per-shard invariants plus the engine's own placement invariants."""
        self._check_open()
        for shard_id, shard in enumerate(self._shards):
            shard.check_integrity()
            if shard.now != self._clock:
                raise AssertionError(
                    f"shard {shard_id} clock {shard.now} != engine clock "
                    f"{self._clock}")
            for (cx, cy), trees in shard._trees.items():
                if any(tree is not None for tree in trees) \
                        and self.shard_map.shard_of_cell(cx, cy) != shard_id:
                    raise AssertionError(
                        f"cell ({cx}, {cy}) stored in shard {shard_id}, "
                        f"owned by shard "
                        f"{self.shard_map.shard_of_cell(cx, cy)}")
            for oid in shard._current:
                if self._home.get(oid) != shard_id:
                    raise AssertionError(
                        f"object {oid} current in shard {shard_id} but "
                        f"home map says {self._home.get(oid)}")

    # -- persistence -----------------------------------------------------------

    def save(self) -> None:
        """Persist every shard's catalog (manifest already on disk)."""
        self._check_open()
        for shard in self._shards:
            shard.save()
        self._mutated = False

    @classmethod
    def open(cls, path: str, config: SWSTConfig,
             executor: Executor | None = None) -> "ShardedEngine":
        """Re-open a saved shard directory, recovering every shard.

        Each shard runs the storage layer's full recovery-on-open
        (committed-header pick, truncate of uncommitted extends, dirty
        checksum sweep, catalog validation).  The first shard that fails
        raises :class:`ShardOpenError` naming it; shards opened before
        the failure are closed again.  Shard clocks are re-synchronised
        to the newest shard (a crash between per-shard saves can leave a
        lagging shard, whose pending window drops then fire here).
        """
        engine = cls.__new__(cls)
        engine.config = config
        engine._init_common(executor)
        engine._dir = os.fspath(path)
        engine._shards = []
        try:
            manifest = cls._load_manifest(
                os.path.join(engine._dir, _MANIFEST_NAME))
            if manifest["n_shards"] != config.n_shards:
                raise EngineError(
                    f"directory {engine._dir!r} holds "
                    f"{manifest['n_shards']} shards but config.n_shards "
                    f"is {config.n_shards}")
            for shard_id in range(config.n_shards):
                shard_path = engine.shard_path(shard_id)
                try:
                    engine._shards.append(SWSTIndex.open(shard_path, config))
                except Exception as exc:
                    raise ShardOpenError(shard_id, shard_path, exc) from exc
            engine._clock = max(shard.now for shard in engine._shards)
            lagging = any(shard.now != engine._clock
                          for shard in engine._shards)
            for shard in engine._shards:
                shard.advance_time(engine._clock)
            engine._mutated = lagging
            for shard_id, shard in enumerate(engine._shards):
                for oid, (_, _, s) in shard.current_objects().items():
                    other = engine._home.get(oid)
                    if other is None or \
                            engine._shards[other]._current[oid][2] < s:
                        engine._home[oid] = shard_id
        except BaseException:
            engine._abandon()
            raise
        return engine

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    def close(self) -> None:
        """Close every shard and (if owned) the executor."""
        if self._closed:
            return
        self._closed = True
        first_error: BaseException | None = None
        for shard in self._shards:
            try:
                shard.close()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if self._owns_executor:
            self._executor.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
