"""Deterministic cell -> shard placement for the scatter-gather engine.

The SWST index is partitionable along its first layer: every insert and
every query touches only the B+ trees of the spatial grid cells it
overlaps, and no structure is shared *between* cells.  The engine
therefore shards at cell granularity: each grid cell is owned by exactly
one shard, chosen by a fixed multiplicative hash of the cell coordinates.

Hashing (rather than striping ``cell_index % n_shards``) spreads
spatially adjacent cells across shards, so a skewed workload that
hammers one region of space still fans out over the whole pool instead
of serialising on one hot shard.  The map is a pure function of
``(x_partitions, y_partitions, n_shards)`` — no randomness, no
interpreter state — so the same configuration always produces the same
placement and a saved shard directory can be reopened by any process.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Knuth's multiplicative hash constant (2^32 / phi, odd).
_HASH_MULTIPLIER = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class GridShardMap:
    """Deterministic mapping of grid cells onto ``n_shards`` shards.

    Attributes:
        x_partitions, y_partitions: spatial grid resolution (must match
            the index configuration).
        n_shards: number of shards in the engine.
    """

    x_partitions: int
    y_partitions: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.x_partitions < 1 or self.y_partitions < 1:
            raise ValueError(
                f"grid dimensions must be >= 1, got "
                f"{self.x_partitions}x{self.y_partitions}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")

    def shard_of_cell(self, cx: int, cy: int) -> int:
        """Shard owning grid cell ``(cx, cy)``."""
        if not (0 <= cx < self.x_partitions and 0 <= cy < self.y_partitions):
            raise ValueError(f"cell ({cx}, {cy}) outside grid "
                             f"{self.x_partitions}x{self.y_partitions}")
        index = cx * self.y_partitions + cy
        hashed = (index * _HASH_MULTIPLIER) & _HASH_MASK
        # Range-reduce via the HIGH bits (Lemire's fastrange): taking the
        # hash modulo a power-of-two shard count would read only the low
        # bits, which a multiplication by an odd constant leaves equal to
        # the plain cell index — i.e. striping, not hashing.
        return (hashed * self.n_shards) >> 32

    def placement(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Cells grouped by owning shard, from *one* pass over the grid.

        The tuple is computed lazily on first use and cached on the
        instance, so :meth:`cells_of_shard`, :meth:`shard_counts`, and
        :meth:`imbalance` all share a single O(cells) scan instead of
        each caller re-walking the grid.  The cache is not a dataclass
        field, so equality/hashing of the frozen map are unaffected.
        """
        cached: tuple[tuple[tuple[int, int], ...], ...] | None = \
            getattr(self, "_placement", None)
        if cached is None:
            buckets: list[list[tuple[int, int]]] = \
                [[] for _ in range(self.n_shards)]
            for cx in range(self.x_partitions):
                for cy in range(self.y_partitions):
                    buckets[self.shard_of_cell(cx, cy)].append((cx, cy))
            cached = tuple(tuple(cells) for cells in buckets)
            object.__setattr__(self, "_placement", cached)
        return cached

    def cells_of_shard(self, shard_id: int) -> list[tuple[int, int]]:
        """Every grid cell owned by ``shard_id`` (diagnostics/tests)."""
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard {shard_id} outside [0, {self.n_shards})")
        return list(self.placement()[shard_id])

    def shard_counts(self) -> list[int]:
        """Cells owned per shard (balance diagnostics)."""
        return [len(cells) for cells in self.placement()]

    def imbalance(self) -> tuple[int, int]:
        """``(max, min)`` cells-per-shard — the resharder's split planner
        uses the spread to report how evenly a target shard count divides
        the grid before committing to it."""
        counts = self.shard_counts()
        return (max(counts), min(counts))
