"""Per-shard write-ahead log for warm worker processes.

Between two epoch commits (``save()`` calls) a warm worker mutates its
shard's page file freely: the buffer pool evicts dirty pages mid-session
and the pager rewrites free-list links in place, so a SIGKILL leaves the
file unusable until the *next* commit — by design (PR 2's recovery sweep
refuses generation-ahead pages).  The WAL is what makes acknowledged
writes survive anyway: every mutation is appended here and fsynced
*before* it is acknowledged, and on restart the worker rebuilds the
shard from its last committed snapshot plus a replay of this log.

The sliding-window workload makes this log unusually cheap to reason
about: entry start times are non-decreasing (the same increasing-ending-
time structure the interval-index literature exploits), so the log is
pure append in logical time as well as in file offset — replay is a
single forward pass with no undo records.

On-disk format (all little-endian)::

    header:  magic "SWAL" | u16 version | u16 reserved | u64 epoch
    record:  u32 payload_len | u64 seq | u8 op | payload | u32 crc

``payload`` is ``payload_len`` signed 64-bit integers (the op's
arguments); ``crc`` is the CRC32 of everything before it in the record.
``epoch`` names the engine manifest epoch the log's *base* snapshot
belongs to: the two-phase ``save()`` resets each shard's WAL to the new
epoch right after the manifest FLIP, so a WAL whose epoch matches the
manifest holds exactly the not-yet-committed tail.

Replay rules:

* a short or CRC-bad **final** record is a torn tail — the crash landed
  mid-append before the fsync, so the record was never acknowledged;
  it is silently truncated on resume.
* damage anywhere **before** the last record, a bad header, or an epoch
  *ahead* of the manifest is :class:`~repro.engine.errors.WalCorruptError`
  — the acknowledged prefix itself is unreadable and replay must not
  guess.
* a WAL *behind* the manifest epoch is stale (its ops are already in the
  committed snapshot) and is reset, never replayed.

Every op is one public :class:`~repro.core.index.SWSTIndex` method call,
so "replay equals direct apply" is structural, not incidental; the
engine validates arguments against its own mirror *before* logging, so
replaying a valid log never raises.
"""

from __future__ import annotations

import dataclasses
import os
import struct
import zlib
from typing import TYPE_CHECKING, Iterable, Sequence

from ..storage.fileops import DURABLE_FILE_OPS, FileOps
from .errors import WalCorruptError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..core.index import SWSTIndex

_MAGIC = b"SWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_FIXED = struct.Struct("<IQB")
_CRC = struct.Struct("<I")
_ARG = struct.Struct("<q")

HEADER_SIZE = _HEADER.size

#: ``None`` durations/retentions are logged as this sentinel (all real
#: values are >= 1, so -1 is unambiguous).
NONE_ARG = -1

OP_ADVANCE = 1    #: (t,) -> advance_time(t)
OP_INSERT = 2     #: (oid, x, y, s, d|-1) -> insert(...)
OP_CLOSE = 3      #: (oid, t) -> close_object(oid, t)
OP_DELETE = 4     #: (oid, x, y, s, d|-1) -> delete(...)
OP_RETAIN = 5     #: (oid, r|-1) -> set_retention(oid, r)
OP_FORGET = 6     #: (oid,) -> forget_object(oid)
OP_RUN = 7        #: (t_max, oid1, x1, y1, t1, ...) -> batched report run

_KNOWN_OPS = frozenset({OP_ADVANCE, OP_INSERT, OP_CLOSE, OP_DELETE,
                        OP_RETAIN, OP_FORGET, OP_RUN})


def wal_file_name(shard_id: int) -> str:
    """WAL file name of one shard (lives next to its page file)."""
    return f"shard-{shard_id:03d}.wal"


def base_file_name(shard_id: int) -> str:
    """Base-snapshot file name of one shard.

    The base is a byte copy of the shard's page file taken at the last
    epoch checkpoint (and refreshed at worker start): the state WAL
    replay rebuilds from when a crash leaves the live page file
    unrecoverable (mid-session evictions stamp pages past the committed
    generation, which recovery-on-open rightly refuses).
    """
    return f"shard-{shard_id:03d}.pages.base"


@dataclasses.dataclass(frozen=True, slots=True)
class WalRecord:
    """One logged operation: a sequence number, an op code, int args."""

    seq: int
    op: int
    args: tuple[int, ...]

    def encode(self) -> bytes:
        payload = b"".join(_ARG.pack(arg) for arg in self.args)
        fixed = _FIXED.pack(len(self.args), self.seq, self.op)
        return fixed + payload + _CRC.pack(zlib.crc32(fixed + payload))


@dataclasses.dataclass(frozen=True, slots=True)
class WalReport:
    """Minimal ReportLike for replaying :data:`OP_RUN` batches."""

    oid: int
    x: int
    y: int
    t: int


@dataclasses.dataclass(frozen=True, slots=True)
class WalScan:
    """Result of reading a WAL file.

    Attributes:
        epoch: manifest epoch named by the header.
        records: every whole, CRC-valid record in order.
        valid_bytes: file offset just past the last valid record (the
            resume/truncation point).
        total_bytes: actual file size; ``> valid_bytes`` iff the file
            ends in a torn tail.
    """

    epoch: int
    records: tuple[WalRecord, ...]
    valid_bytes: int
    total_bytes: int

    @property
    def torn(self) -> bool:
        return self.total_bytes > self.valid_bytes


def _decode_one(blob: bytes, offset: int) -> tuple[WalRecord, int] | None:
    """Decode the record at ``offset``; None if short or CRC-bad."""
    end = offset + _FIXED.size
    if end > len(blob):
        return None
    n_args, seq, op = _FIXED.unpack_from(blob, offset)
    body_end = end + n_args * _ARG.size
    crc_end = body_end + _CRC.size
    if crc_end > len(blob):
        return None
    (crc,) = _CRC.unpack_from(blob, body_end)
    if zlib.crc32(blob[offset:body_end]) != crc:
        return None
    args = tuple(arg for (arg,) in _ARG.iter_unpack(blob[end:body_end]))
    return WalRecord(seq, op, args), crc_end


def read_wal(path: str) -> WalScan:
    """Read and verify a WAL file.

    Stops at the first short or CRC-bad record (the torn tail a crash
    mid-append leaves).  Raises :class:`WalCorruptError` for a bad
    header, an unknown op code, or a sequence-number discontinuity —
    damage inside the acknowledged prefix, which replay must not step
    over.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < HEADER_SIZE:
        raise WalCorruptError(path, f"header truncated "
                                    f"({len(blob)} < {HEADER_SIZE} bytes)")
    magic, version, _reserved, epoch = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise WalCorruptError(path, f"bad magic {magic!r}")
    if version != _VERSION:
        raise WalCorruptError(path, f"unsupported version {version}")
    records: list[WalRecord] = []
    offset = HEADER_SIZE
    expected_seq: int | None = None
    while offset < len(blob):
        decoded = _decode_one(blob, offset)
        if decoded is None:
            break  # torn tail: never acknowledged, dropped on resume
        record, offset = decoded
        if record.op not in _KNOWN_OPS:
            raise WalCorruptError(path, f"unknown op {record.op} at "
                                        f"seq {record.seq}")
        if expected_seq is not None and record.seq != expected_seq:
            raise WalCorruptError(
                path, f"sequence discontinuity: expected {expected_seq}, "
                      f"found {record.seq}")
        expected_seq = record.seq + 1
        records.append(record)
    return WalScan(epoch=epoch, records=tuple(records),
                   valid_bytes=offset, total_bytes=len(blob))


def apply_record(shard: "SWSTIndex", record: WalRecord) -> None:
    """Apply one logged op to ``shard``.

    Total for records logged by the engine: argument validation happened
    against the engine's mirror before the record was written, and
    replay starts from the same base snapshot the log was written
    against, so each call is replayed into exactly the state it
    originally saw.
    """
    op, args = record.op, record.args
    if op == OP_ADVANCE:
        shard.advance_time(args[0])
    elif op == OP_INSERT:
        oid, x, y, s, d = args
        shard.insert(oid, x, y, s, None if d == NONE_ARG else d)
    elif op == OP_CLOSE:
        shard.close_object(args[0], args[1])
    elif op == OP_DELETE:
        oid, x, y, s, d = args
        shard.delete(oid, x, y, s, None if d == NONE_ARG else d)
    elif op == OP_RETAIN:
        oid, retention = args
        shard.set_retention(oid,
                            None if retention == NONE_ARG else retention)
    elif op == OP_FORGET:
        shard.forget_object(args[0])
    elif op == OP_RUN:
        t_max = args[0]
        reports = [WalReport(*args[base:base + 4])
                   for base in range(1, len(args), 4)]
        shard.advance_time(t_max)
        shard._ingest_run_reports(reports)
    else:  # pragma: no cover - read_wal rejects unknown ops
        raise WalCorruptError("<record>", f"unknown op {op}")


def replay(shard: "SWSTIndex", records: Iterable[WalRecord]) -> int:
    """Apply ``records`` to ``shard`` in order; returns the count."""
    count = 0
    for record in records:
        apply_record(shard, record)
        count += 1
    return count


class WalWriter:
    """Append-side of one shard's WAL with fsync batching (group commit).

    :meth:`log` buffers encoded records in memory; :meth:`commit` writes
    the whole buffer with one ``append_file`` and makes it durable with
    one ``fsync_file`` — the worker's acknowledgement barrier.  Many
    logged ops per commit cost one fsync, which is where the warm-worker
    ingest win over a full per-batch ``save()`` comes from.
    """

    def __init__(self, path: str, fops: FileOps, epoch: int,
                 next_seq: int = 0) -> None:
        self.path = path
        self.fops = fops
        self.epoch = epoch
        self.next_seq = next_seq
        self._pending: list[bytes] = []

    @classmethod
    def reset(cls, path: str, fops: FileOps | None = None, *,
              epoch: int) -> "WalWriter":
        """(Re)create the WAL as an empty log for ``epoch``, atomically.

        The fresh header is written to a temp file, fsynced, renamed over
        any previous log and the directory fsynced — so a crash during
        reset leaves either the old complete log or the new empty one,
        never a half-written header.
        """
        ops = fops if fops is not None else DURABLE_FILE_OPS
        header = _HEADER.pack(_MAGIC, _VERSION, 0, epoch)
        tmp = path + ".tmp"
        ops.write_file(tmp, header)
        ops.replace(tmp, path)
        ops.fsync_dir(_parent_dir(path))
        return cls(path, ops, epoch)

    @classmethod
    def resume(cls, path: str,
               fops: FileOps | None = None) -> tuple["WalWriter", WalScan]:
        """Open an existing WAL for appending after replaying it.

        Truncates a torn tail (unacknowledged bytes) so the next append
        starts on a record boundary, and continues the sequence numbers
        where the valid prefix ended.
        """
        ops = fops if fops is not None else DURABLE_FILE_OPS
        scan = read_wal(path)
        if scan.torn:
            ops.truncate_file(path, scan.valid_bytes)
        next_seq = scan.records[-1].seq + 1 if scan.records else 0
        return cls(path, ops, scan.epoch, next_seq), scan

    def log(self, op: int, args: Sequence[int]) -> int:
        """Buffer one record; returns its sequence number.

        Not durable (or even on disk) until :meth:`commit`.
        """
        seq = self.next_seq
        self.next_seq = seq + 1
        self._pending.append(WalRecord(seq, op, tuple(args)).encode())
        return seq

    @property
    def pending(self) -> int:
        return len(self._pending)

    def commit(self) -> None:
        """Append and fsync everything logged since the last commit."""
        if not self._pending:
            return
        blob = b"".join(self._pending)
        self._pending.clear()
        self.fops.append_file(self.path, blob)
        self.fops.fsync_file(self.path)


def _parent_dir(path: str) -> str:
    return os.path.dirname(os.path.abspath(path))


def rebase_wal(path: str, fops: FileOps | None, epoch: int) -> bool:
    """Rewrite ``path``'s header to claim ``epoch``, keeping its records.

    Epoch-commit recovery uses this to roll a *pending* shard forward:
    the shard's page file never committed the new epoch, so its WAL tail
    (written against the old epoch's base) still holds every
    acknowledged op — the records stay valid, only the epoch label
    moves.  The rewrite is atomic (temp + replace + dir fsync) and
    idempotent; a torn tail is dropped in passing (it was never
    acknowledged).  Returns False if the file does not exist or already
    claims ``epoch``.
    """
    ops = fops if fops is not None else DURABLE_FILE_OPS
    if not os.path.exists(path):
        return False
    scan = read_wal(path)
    if scan.epoch == epoch:
        return False
    blob = _HEADER.pack(_MAGIC, _VERSION, 0, epoch) \
        + b"".join(record.encode() for record in scan.records)
    tmp = path + ".tmp"
    ops.write_file(tmp, blob)
    ops.replace(tmp, path)
    ops.fsync_dir(_parent_dir(path))
    return True
