"""Offline integrity sweep over a whole engine directory.

:func:`scrub_directory` extends the single-file ``repro scrub`` to a
sharded engine directory: it validates the ``engine.json`` manifest,
checksum-sweeps every ``shard-*.pages`` file with
:func:`~repro.storage.scrub.scrub_page_file`, and cross-checks each
shard's committed header generation against the manifest's recorded
epoch generations.  Like the file-level scrub it never repairs
anything — a leftover save marker is *reported* but left for
``ShardedEngine.open()`` to resolve.

Warm-worker directories additionally hold per-shard write-ahead logs
(``shard-NNN.wal``) and base snapshots (``shard-NNN.pages.base``); the
sweep CRC-checks every WAL record, cross-checks the WAL's epoch against
the manifest (a WAL *ahead* of the committed epoch is damage — replay
would apply writes the manifest never acknowledged; a WAL *behind* is
merely stale and is reset at the next worker start), reports torn tails
(expected after a crash; resume truncates them) and flags orphan WALs
whose shard id exceeds the manifest's shard count.
"""

from __future__ import annotations

import dataclasses
import os
import re

from ..storage.errors import StorageError
from ..storage.scrub import ScrubReport, scrub_page_file
from .engine import (_GEN_DIR_PREFIX, _MANIFEST_NAME, _PREPARE_NAME,
                     _load_prepare, _shard_file_name, generation_dir,
                     load_manifest, probe_prepare_state, snapshot_dir)
from .errors import EngineError, WalCorruptError
from .wal import read_wal, wal_file_name

_WAL_NAME_RE = re.compile(r"^shard-(\d{3})\.wal$")


@dataclasses.dataclass
class DirectoryScrubReport:
    """Result of sweeping one engine directory.

    Attributes:
        path: the directory swept.
        manifest_ok: True if ``engine.json`` parsed and validated.
        problems: directory-level findings — unreadable manifest,
            missing or unrecognisable shard files, shards behind the
            manifest's recorded generations.
        notes: non-fatal observations (e.g. a leftover save marker,
            which ``ShardedEngine.open()`` recovers, or a stale/torn
            WAL that worker recovery resets or truncates).
        reports: per-shard file sweeps, in shard-id order (missing
            files have no report; see ``problems``).
        wal_records: replayable (CRC-whole, current-epoch) WAL records
            per swept WAL file, keyed by file name.
    """

    path: str
    manifest_ok: bool
    problems: list[str]
    notes: list[str]
    reports: list[ScrubReport]
    wal_records: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True if the manifest and every shard file check out."""
        return self.manifest_ok and not self.problems \
            and all(report.ok for report in self.reports)

    def render(self) -> str:
        state = "manifest ok" if self.manifest_ok else "manifest INVALID"
        lines = [f"{self.path}: engine directory, {state}, "
                 f"{len(self.reports)} shard file(s) swept"]
        for name in sorted(self.wal_records):
            lines.append(f"  wal {name}: "
                         f"{self.wal_records[name]} replayable record(s)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        for report in self.reports:
            lines.extend("  " + line for line in
                         report.render().splitlines())
        verdict = "clean" if self.ok else "CORRUPT"
        lines.append(f"  directory verdict: {verdict}")
        return "\n".join(lines)


def scrub_directory(path: str | os.PathLike[str]) -> DirectoryScrubReport:
    """Sweep every shard file of an engine directory plus its manifest."""
    path = os.fspath(path)
    problems: list[str] = []
    notes: list[str] = []
    reports: list[ScrubReport] = []
    manifest = None
    manifest_path = os.path.join(path, _MANIFEST_NAME)
    try:
        manifest = load_manifest(manifest_path)
    except EngineError as exc:
        problems.append(str(exc))
    shard_dir = generation_dir(
        path, manifest["generation"] if manifest is not None else 0)
    if os.path.exists(os.path.join(path, _PREPARE_NAME)):
        _classify_marker(path, shard_dir, manifest, problems, notes)
    _note_staged_generations(path, manifest, notes)
    if manifest is not None:
        shard_files = [_shard_file_name(shard_id)
                       for shard_id in range(manifest["n_shards"])]
    else:
        # No usable manifest: sweep whatever shard files are present.
        shard_files = sorted(
            name for name in os.listdir(path)
            if name.startswith("shard-") and name.endswith(".pages")
        ) if os.path.isdir(path) else []
    for shard_id, name in enumerate(shard_files):
        shard_path = os.path.join(shard_dir, name)
        if not os.path.exists(shard_path):
            problems.append(f"shard file {name} is missing")
            continue
        try:
            report = scrub_page_file(shard_path)
        except (StorageError, OSError) as exc:
            problems.append(f"shard file {name} cannot be swept: {exc}")
            continue
        reports.append(report)
        if manifest is not None and manifest["shards"] is not None:
            recorded = manifest["shards"][shard_id]
            head = report.committed
            observed = head.generation if head is not None else None
            if observed is not None and observed < recorded:
                problems.append(
                    f"shard file {name} is behind the manifest: committed "
                    f"generation {observed} < recorded {recorded}")
    wal_records = _scrub_wals(shard_dir, manifest, problems, notes)
    return DirectoryScrubReport(path=path, manifest_ok=manifest is not None,
                                problems=problems, notes=notes,
                                reports=reports, wal_records=wal_records)


def _classify_marker(path: str, shard_dir: str, manifest: dict | None,
                     problems: list[str], notes: list[str]) -> None:
    """Classify a leftover PREPARE marker the way ``open()`` would.

    Mirrors :meth:`ShardedEngine._recover_epoch` without writing
    anything: a marker that rolls back, rolls forward, or restores from
    a complete ``snapshots/<epoch>/`` copy set is a *note* (recovery is
    deterministic), while a torn save with no usable snapshot is a
    *problem* — ``open()`` would raise :class:`EpochTornError`.
    """
    marker_path = os.path.join(path, _PREPARE_NAME)
    try:
        prepare = _load_prepare(marker_path)
    except EngineError as exc:
        problems.append(str(exc))
        return
    if prepare is None:  # pragma: no cover - raced unlink
        return
    if manifest is None:
        notes.append(
            f"interrupted save marker {_PREPARE_NAME} present; "
            f"ShardedEngine.open() will roll it back or forward")
        return
    epoch: int = manifest["epoch"]
    if prepare["n_shards"] != manifest["n_shards"] \
            or prepare["epoch"] not in (epoch, epoch + 1):
        problems.append(
            f"save marker {_PREPARE_NAME} is inconsistent with the "
            f"manifest (marker epoch {prepare['epoch']} / "
            f"{prepare['n_shards']} shard(s) vs manifest epoch {epoch} "
            f"/ {manifest['n_shards']} shard(s)); open() refuses the "
            f"directory")
        return
    if prepare["epoch"] == epoch:
        notes.append(
            f"save marker {_PREPARE_NAME} outlived its committed epoch "
            f"{epoch}; open() finishes the cleanup")
        return
    shard_paths = [os.path.join(shard_dir, _shard_file_name(shard_id))
                   for shard_id in range(manifest["n_shards"])]
    _, committed, pending = probe_prepare_state(prepare, shard_paths)
    if not committed:
        notes.append(
            f"interrupted save marker for epoch {prepare['epoch']}: no "
            f"shard committed it; open() rolls the directory back")
        return
    if not pending:
        notes.append(
            f"interrupted save marker for epoch {prepare['epoch']}: "
            f"every shard committed it; open() rolls the manifest "
            f"forward")
        return
    snap = snapshot_dir(path, epoch)
    if all(os.path.exists(os.path.join(snap, _shard_file_name(shard_id)))
           for shard_id in range(manifest["n_shards"])):
        notes.append(
            f"torn save of epoch {prepare['epoch']} (shards {committed} "
            f"committed, {pending} pending) is RECOVERABLE: snapshot "
            f"generation {epoch:06d} holds copies of every committed "
            f"shard; open() restores them and rolls back")
        return
    problems.append(
        f"torn save of epoch {prepare['epoch']}: shards {committed} "
        f"committed it, shards {pending} did not, and no complete "
        f"snapshot of epoch {epoch} exists; open() raises "
        f"EpochTornError (restore the directory from backup)")


def _note_staged_generations(path: str, manifest: dict | None,
                             notes: list[str]) -> None:
    """Note ``gen-*`` directories the manifest does not point at.

    A crashed reshard leaves its half-built target generation behind;
    ``open()`` never looks inside it and the next reshard clears it, so
    the debris is informational only.
    """
    if not os.path.isdir(path):
        return
    live = manifest["generation"] if manifest is not None else None
    for name in sorted(os.listdir(path)):
        if not name.startswith(_GEN_DIR_PREFIX) \
                or not os.path.isdir(os.path.join(path, name)):
            continue
        suffix = name[len(_GEN_DIR_PREFIX):]
        if live is not None and suffix.isdigit() and int(suffix) == live:
            continue
        notes.append(
            f"staged generation directory {name} is not referenced by "
            f"the manifest (crashed reshard?); open() ignores it and "
            f"the next reshard clears it")


def _scrub_wals(path: str, manifest: dict | None, problems: list[str],
                notes: list[str]) -> dict[str, int]:
    """CRC-sweep every write-ahead log in the directory.

    Appends findings to ``problems``/``notes`` in place and returns the
    replayable-record count per WAL file name.
    """
    wal_records: dict[str, int] = {}
    if not os.path.isdir(path):
        return wal_records
    n_shards = manifest["n_shards"] if manifest is not None else None
    epoch = manifest["epoch"] if manifest is not None else None
    for name in sorted(os.listdir(path)):
        match = _WAL_NAME_RE.match(name)
        if match is None:
            continue
        shard_id = int(match.group(1))
        wal_path = os.path.join(path, name)
        if n_shards is not None and shard_id >= n_shards:
            problems.append(
                f"orphan WAL {name}: manifest records only {n_shards} "
                f"shard(s)")
        try:
            scan = read_wal(wal_path)
        except WalCorruptError as exc:
            problems.append(f"WAL {name} is corrupt: {exc.reason}")
            continue
        except OSError as exc:
            problems.append(f"WAL {name} cannot be read: {exc}")
            continue
        wal_records[name] = len(scan.records)
        if scan.torn:
            torn = scan.total_bytes - scan.valid_bytes
            notes.append(
                f"WAL {name} has a torn tail ({torn} unacknowledged "
                f"byte(s)); worker recovery truncates it")
        if epoch is None:
            continue
        if scan.epoch > epoch:
            problems.append(
                f"WAL {name} claims epoch {scan.epoch} ahead of the "
                f"manifest's committed epoch {epoch}; replaying it would "
                f"apply writes the manifest never acknowledged")
        elif scan.epoch < epoch:
            notes.append(
                f"WAL {name} is stale (epoch {scan.epoch} < manifest "
                f"epoch {epoch}); worker recovery resets it")
        elif n_shards is not None and shard_id < n_shards \
                and not os.path.exists(
                    os.path.join(path, _shard_file_name(shard_id))) \
                and epoch > 0:
            problems.append(
                f"WAL {name} is current but its page file "
                f"{_shard_file_name(shard_id)} is missing")
    if manifest is not None:
        missing = [wal_file_name(shard_id)
                   for shard_id in range(manifest["n_shards"])
                   if not os.path.exists(
                       os.path.join(path, wal_file_name(shard_id)))]
        if missing and len(missing) < manifest["n_shards"]:
            notes.append(
                f"{len(missing)} shard(s) have no WAL "
                f"({', '.join(missing)}); a worker start creates them")
    return wal_records
