"""Offline integrity sweep over a whole engine directory.

:func:`scrub_directory` extends the single-file ``repro scrub`` to a
sharded engine directory: it validates the ``engine.json`` manifest,
checksum-sweeps every ``shard-*.pages`` file with
:func:`~repro.storage.scrub.scrub_page_file`, and cross-checks each
shard's committed header generation against the manifest's recorded
epoch generations.  Like the file-level scrub it never repairs
anything — a leftover save marker is *reported* but left for
``ShardedEngine.open()`` to resolve.
"""

from __future__ import annotations

import dataclasses
import os

from ..storage.errors import StorageError
from ..storage.scrub import ScrubReport, scrub_page_file
from .engine import _MANIFEST_NAME, _PREPARE_NAME, _shard_file_name, \
    load_manifest
from .errors import EngineError


@dataclasses.dataclass
class DirectoryScrubReport:
    """Result of sweeping one engine directory.

    Attributes:
        path: the directory swept.
        manifest_ok: True if ``engine.json`` parsed and validated.
        problems: directory-level findings — unreadable manifest,
            missing or unrecognisable shard files, shards behind the
            manifest's recorded generations.
        notes: non-fatal observations (e.g. a leftover save marker,
            which ``ShardedEngine.open()`` recovers).
        reports: per-shard file sweeps, in shard-id order (missing
            files have no report; see ``problems``).
    """

    path: str
    manifest_ok: bool
    problems: list[str]
    notes: list[str]
    reports: list[ScrubReport]

    @property
    def ok(self) -> bool:
        """True if the manifest and every shard file check out."""
        return self.manifest_ok and not self.problems \
            and all(report.ok for report in self.reports)

    def render(self) -> str:
        state = "manifest ok" if self.manifest_ok else "manifest INVALID"
        lines = [f"{self.path}: engine directory, {state}, "
                 f"{len(self.reports)} shard file(s) swept"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        for report in self.reports:
            lines.extend("  " + line for line in
                         report.render().splitlines())
        verdict = "clean" if self.ok else "CORRUPT"
        lines.append(f"  directory verdict: {verdict}")
        return "\n".join(lines)


def scrub_directory(path: str | os.PathLike[str]) -> DirectoryScrubReport:
    """Sweep every shard file of an engine directory plus its manifest."""
    path = os.fspath(path)
    problems: list[str] = []
    notes: list[str] = []
    reports: list[ScrubReport] = []
    manifest = None
    manifest_path = os.path.join(path, _MANIFEST_NAME)
    try:
        manifest = load_manifest(manifest_path)
    except EngineError as exc:
        problems.append(str(exc))
    if os.path.exists(os.path.join(path, _PREPARE_NAME)):
        notes.append(f"interrupted save marker {_PREPARE_NAME} present; "
                     f"ShardedEngine.open() will roll it back or forward")
    if manifest is not None:
        shard_files = [_shard_file_name(shard_id)
                       for shard_id in range(manifest["n_shards"])]
    else:
        # No usable manifest: sweep whatever shard files are present.
        shard_files = sorted(
            name for name in os.listdir(path)
            if name.startswith("shard-") and name.endswith(".pages")
        ) if os.path.isdir(path) else []
    for shard_id, name in enumerate(shard_files):
        shard_path = os.path.join(path, name)
        if not os.path.exists(shard_path):
            problems.append(f"shard file {name} is missing")
            continue
        try:
            report = scrub_page_file(shard_path)
        except (StorageError, OSError) as exc:
            problems.append(f"shard file {name} cannot be swept: {exc}")
            continue
        reports.append(report)
        if manifest is not None and manifest["shards"] is not None:
            recorded = manifest["shards"][shard_id]
            head = report.committed
            observed = head.generation if head is not None else None
            if observed is not None and observed < recorded:
                problems.append(
                    f"shard file {name} is behind the manifest: committed "
                    f"generation {observed} < recorded {recorded}")
    return DirectoryScrubReport(path=path, manifest_ok=manifest is not None,
                                problems=problems, notes=notes,
                                reports=reports)
