"""Retry and circuit-breaker policies for resilient shard fan-out.

Query fan-out crosses a real failure boundary: a shard's page device can
hit a transient ``OSError``, a process-pool worker can die mid-task, a
network filesystem can stall.  The engine wraps per-shard query tasks in
two small, composable policies:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  optional jitter.  Both time and randomness are *injected seams*
  (``sleep`` and ``rng`` callables): the defaults never sleep and add no
  jitter, so the engine stays bit-for-bit deterministic (invariant R002)
  unless a caller explicitly wires ``time.sleep`` / ``random.random`` in
  (the CLI does, tests don't).
* :class:`CircuitBreaker` — per-shard failure accounting.  After
  ``failure_threshold`` consecutive failures the breaker *opens* and the
  engine stops dispatching to the shard at all; after ``cooldown`` ticks
  it goes *half-open* and lets one probe through, closing again on
  success.  The tick source is an injected ``clock`` seam defaulting to
  a deterministic call counter (each :meth:`CircuitBreaker.allow` is one
  tick), so breaker behaviour is reproducible in tests.

Neither class knows anything about shards or executors; the engine owns
the wiring (see ``ShardedEngine._fan_out_query``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

#: Error classes retried by default: transient device/OS failures and
#: dead worker-pool processes.  Corruption signals (``ChecksumError``,
#: ``TornWriteError``) are deliberately *not* retryable — re-reading a
#: bad page cannot un-rot it.
_DEFAULT_RETRYABLE: tuple[type[BaseException], ...]
try:  # pragma: no cover - always present on CPython >= 3.8
    from concurrent.futures import BrokenExecutor
    _DEFAULT_RETRYABLE = (OSError, BrokenExecutor)
except ImportError:  # pragma: no cover - defensive
    _DEFAULT_RETRYABLE = (OSError,)


def _no_sleep(_delay: float) -> None:
    """Default sleep seam: return immediately (deterministic retries)."""


def _zero_rng() -> float:
    """Default jitter seam: no jitter (deterministic backoff schedule)."""
    return 0.0


def _no_observer(_retry_index: int, _error: BaseException) -> None:
    """Default retry observer: do nothing."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff over injected seams.

    Args:
        attempts: total tries (1 = no retry).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: upper bound on any single backoff.
        jitter: fraction of the delay added as jitter; the actual delay
            is ``delay * (1 + jitter * rng())``, so ``rng`` returning in
            [0, 1) yields up to ``jitter`` extra.
        retryable: exception classes worth retrying; anything else
            propagates immediately.
        sleep: the sleep seam; defaults to a no-op so retries are
            immediate and deterministic.  Wire ``time.sleep`` here for
            real backoff (the CLI does).
        rng: the jitter seam; defaults to a constant 0.  Wire
            ``random.Random(seed).random`` for real jitter.
        on_retry: observer invoked as ``on_retry(retry_index, error)``
            after a retryable failure, *before* the backoff sleep.
            Defaults to a no-op.  The warm-worker supervisor hooks its
            restart accounting here (the observer runs on the calling
            side, so task callables stay mutation-free per R005).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    retryable: tuple[type[BaseException], ...] = _DEFAULT_RETRYABLE
    sleep: Callable[[float], None] = _no_sleep
    rng: Callable[[], float] = _zero_rng
    on_retry: Callable[[int, BaseException], None] = _no_observer

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, "
                             f"got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay_for(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** retry_index)
        return delay * (1.0 + self.jitter * self.rng())

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn``, retrying retryable failures up to ``attempts``.

        The final failure (retryable or not) propagates unchanged; the
        caller sees exactly the exception the last attempt raised.
        """
        for retry_index in range(self.attempts - 1):
            try:
                return fn()
            except self.retryable as exc:
                self.on_retry(retry_index, exc)
                self.sleep(self.delay_for(retry_index))
        return fn()


def _counting_clock() -> Callable[[], float]:
    """Deterministic default clock: one tick per call."""
    ticks = iter(range(1 << 62))
    return lambda: float(next(ticks))


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a cooldown probe.

    States:

    * *closed* — requests flow; consecutive failures are counted.
    * *open* — tripped after ``failure_threshold`` consecutive failures;
      :meth:`allow` answers False until ``cooldown`` has elapsed on the
      injected clock.
    * *half-open* — after the cooldown one probe is allowed; success
      closes the breaker, failure re-opens it (restarting the cooldown).

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        cooldown: clock units the breaker stays open before probing.
        clock: monotonic time seam; defaults to a deterministic counter
            advancing by one per :meth:`allow` call, so ``cooldown`` is
            then measured in *dispatch attempts*.  Wire
            ``time.monotonic`` for wall-clock cooldowns.
    """

    def __init__(self, failure_threshold: int = 5, cooldown: float = 16.0,
                 clock: Callable[[], float] | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock if clock is not None else _counting_clock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (diagnostics)."""
        if self._opened_at is None:
            return "closed"
        return "half-open" if self._probing else "open"

    def allow(self) -> bool:
        """True if a request may be dispatched now.

        Advances the clock seam by one call; while open, flips to
        half-open (allowing a single probe) once the cooldown elapses.
        """
        now = self._clock()
        if self._opened_at is None:
            return True
        if self._probing:
            # A probe is already in flight; hold further traffic until
            # its outcome is recorded.
            return False
        if now - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """Note a successful request: close and reset the breaker."""
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """Note a failed request; trips the breaker at the threshold."""
        if self._probing:
            # Failed probe: re-open and restart the cooldown.
            self._probing = False
            self._opened_at = self._clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold \
                and self._opened_at is None:
            self._opened_at = self._clock()
