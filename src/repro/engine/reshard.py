"""Generation-flip resharding of a saved engine directory.

``reshard(directory, new_n_shards, config)`` rewrites a saved
:class:`~repro.engine.engine.ShardedEngine` directory to a different
shard count without ever modifying the live generation: the new shard
files are built side-by-side under ``gen-<G+1>/`` (see
:func:`~repro.engine.engine.generation_dir`) and the directory switches
over in a single atomic manifest write.  Until that write lands the
old generation is byte-for-byte untouched — a crash at *any* file
operation of the protocol reopens as exactly the old directory; from
the manifest flip on it reopens as exactly the new one (the reshard
crash matrix proves both arms op-by-op).

The build reads from *copies* of the committed shard files, not the
files themselves.  That keeps the protocol read-only with respect to
the old generation (even opening a page file commits a header) and
lets an online caller keep serving from its live engine while the
build streams in the background: the copies freeze the save-point
state, so nothing races the pagers the serving engine holds open.

Protocol (all durable steps through the :class:`FileOps` seam):

1. **STAGE** — ``mkdir gen-<G+1>/`` + parent fsync; clear any debris a
   previously crashed reshard left there; copy every committed shard
   file to ``gen-<G+1>/source-<sid>.pages``.
2. **BUILD** — open the copies, verify their clocks agree, stream every
   physical entry through the *new* :class:`GridShardMap` into fresh
   shard files, carry over the current-entry table and per-object
   retentions, then drop the source copies.  No manifest state changes.
3. **FLIP** — save every new shard, fsync the generation directory,
   atomically rewrite ``engine.json`` with the new shard count, epoch
   ``E+1`` and generation ``G+1``.  This single rename is the commit
   point.  The just-committed (clean) new shard files are then
   CoW-copied into ``snapshots/<E+1>/`` so the new generation is
   crash-recoverable immediately.
4. **CLEANUP** — unlink the old generation's shard/WAL/base files and
   the stale CoW snapshots of older epochs (they copy old-generation
   files).  A crash in here costs disk space only; the next save
   re-prunes.

Preconditions (checked before anything is written, typed
:class:`~repro.engine.errors.ReshardError` on violation): the
directory holds a committed format-2 manifest (epoch >= 1), no
unresolved save marker, and no write-ahead log with acknowledged
records at the current epoch — those records live only in the WAL, so
resharding from the page files alone would drop them; a
``WorkerEngine`` checkpoint (``save()``) folds them in first.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os

from ..core.config import SWSTConfig
from ..core.index import SWSTIndex
from ..storage.errors import StorageError
from ..storage.fileops import DURABLE_FILE_OPS, FileOps
from .engine import (_MANIFEST_FORMAT, _MANIFEST_NAME, _PREPARE_NAME,
                     _SNAPSHOTS_DIR, ShardedEngine, _shard_file_name,
                     generation_dir, load_manifest, write_json_atomic)
from .errors import ReshardError
from .executor import Executor
from .retry import CircuitBreaker
from .sharding import GridShardMap
from .wal import base_file_name, read_wal, wal_file_name


def _source_file_name(shard_id: int) -> str:
    """Staging copy of one old shard (never matches ``shard-*`` globs)."""
    return f"source-{shard_id:03d}.pages"


@dataclasses.dataclass(frozen=True)
class ReshardReport:
    """Outcome of one committed reshard.

    Attributes:
        directory: the resharded engine directory.
        old_n_shards / new_n_shards: shard counts before and after.
        epoch: manifest epoch after the flip (old epoch + 1).
        generation: manifest generation after the flip.
        entries: physical entries streamed into the new generation.
        currents: live current-entry records carried over.
        old_imbalance / new_imbalance: (max, min) cells-per-shard of
            the grid placement before and after (see
            :meth:`GridShardMap.imbalance`).
    """

    directory: str
    old_n_shards: int
    new_n_shards: int
    epoch: int
    generation: int
    entries: int
    currents: int
    old_imbalance: tuple[int, int]
    new_imbalance: tuple[int, int]

    def render(self) -> str:
        lines = [
            f"resharded {self.directory}",
            f"  shards:     {self.old_n_shards} -> {self.new_n_shards}",
            f"  epoch:      {self.epoch}  (generation {self.generation})",
            f"  streamed:   {self.entries} entries "
            f"({self.currents} current)",
            f"  cell imbalance (max/min per shard): "
            f"{self.old_imbalance[0]}/{self.old_imbalance[1]} -> "
            f"{self.new_imbalance[0]}/{self.new_imbalance[1]}",
        ]
        return "\n".join(lines)


class GenerationBuild:
    """One staged reshard: validate, build side-by-side, flip, clean up.

    Split into :meth:`build` and :meth:`commit` so an online caller can
    run the (long) build off its write path and take its exclusive
    section only around the (short) commit; :func:`reshard` drives both
    back-to-back for the offline case.  After :meth:`build` the new
    engine is live at :attr:`engine` and accepts the full mutation API
    — an online caller replays its catch-up journal into it *before*
    :meth:`commit`, so the flip loses nothing.

    Constructing the build validates every precondition but writes
    nothing; :meth:`abort` after a failure only releases handles (a
    real crash could not do more), leaving debris the next build or
    scrub recognises.
    """

    def __init__(self, directory: str, new_n_shards: int,
                 config: SWSTConfig, *,
                 executor: Executor | None = None,
                 file_ops: FileOps | None = None,
                 snapshots: bool = True) -> None:
        if new_n_shards < 1:
            raise ValueError(f"new_n_shards must be >= 1, "
                             f"got {new_n_shards}")
        self._dir = os.fspath(directory)
        self._fops: FileOps = file_ops if file_ops is not None \
            else DURABLE_FILE_OPS
        self._executor = executor
        self._snapshots = snapshots
        manifest = load_manifest(os.path.join(self._dir, _MANIFEST_NAME))
        if manifest["format"] < _MANIFEST_FORMAT or manifest["epoch"] < 1:
            raise ReshardError(
                f"directory {self._dir!r} has never completed an epoch "
                f"save (format {manifest['format']}, epoch "
                f"{manifest['epoch']}); save it once first")
        if os.path.exists(os.path.join(self._dir, _PREPARE_NAME)):
            raise ReshardError(
                f"directory {self._dir!r} holds an interrupted save "
                f"(marker {_PREPARE_NAME}); recover it with "
                f"ShardedEngine.open() before resharding")
        self._old_n: int = manifest["n_shards"]
        self._epoch: int = manifest["epoch"]
        self._old_generation: int = manifest["generation"]
        self._new_generation = self._old_generation + 1
        self._old_config = dataclasses.replace(config, n_shards=self._old_n)
        self._new_config = dataclasses.replace(config,
                                               n_shards=new_n_shards)
        self._check_wals_quiescent()
        self._gen_dir = generation_dir(self._dir, self._new_generation)
        self._old_gen_dir = generation_dir(self._dir, self._old_generation)
        self._sources: list[SWSTIndex] = []
        self._source_paths: list[str] = []
        self._staged = False
        self._engine: ShardedEngine | None = None
        self._entries = 0
        self._currents = 0
        self._committed = False

    def _check_wals_quiescent(self) -> None:
        """Refuse WALs whose acknowledged records the page files lack.

        A ``WorkerEngine`` acknowledges writes into per-shard WALs and
        folds them into the page files only at checkpoint; records at
        the manifest epoch exist *nowhere else*, so streaming from the
        page files would silently drop them.  Stale WALs (older epoch)
        are already folded in and merely await cleanup.
        """
        old_dir = generation_dir(self._dir, self._old_generation)
        for shard_id in range(self._old_n):
            path = os.path.join(old_dir, wal_file_name(shard_id))
            if not os.path.exists(path):
                continue
            scan = read_wal(path)
            if scan.epoch > self._epoch:
                raise ReshardError(
                    f"write-ahead log {path!r} claims epoch "
                    f"{scan.epoch} past the manifest epoch "
                    f"{self._epoch}; the directory mixes snapshots")
            if scan.epoch == self._epoch and scan.records:
                raise ReshardError(
                    f"write-ahead log {path!r} holds "
                    f"{len(scan.records)} acknowledged records not yet "
                    f"checkpointed into the page files; open the "
                    f"directory with WorkerEngine and save() first")

    @property
    def engine(self) -> ShardedEngine:
        """The new-generation engine (live after :meth:`build`)."""
        assert self._engine is not None, "build() has not run"
        return self._engine

    @property
    def new_generation(self) -> int:
        return self._new_generation

    # -- stage 1+2: side-by-side build ----------------------------------------

    def stage(self) -> None:
        """Freeze the committed shard files into staging copies.

        Must run while nothing can dirty the old shard files — i.e.
        right after a save, before new mutations (a live engine's
        buffer pool may evict uncommitted pages into the files at any
        time).  The offline driver has the directory to itself; an
        online caller takes its exclusive section around
        ``save() + stage()`` and only then lets writers resume while
        :meth:`build` streams from the frozen copies.
        """
        fops = self._fops
        fops.mkdir(self._gen_dir)
        fops.fsync_dir(self._dir)
        self._clear_debris()
        for shard_id in range(self._old_n):
            src = os.path.join(self._old_gen_dir,
                               _shard_file_name(shard_id))
            dst = os.path.join(self._gen_dir,
                               _source_file_name(shard_id))
            fops.copy_file(src, dst)
            self._source_paths.append(dst)
        fops.fsync_dir(self._gen_dir)
        self._staged = True

    def build(self) -> None:
        """Stream the staged copies into the new generation (no flip yet)."""
        if not self._staged:
            self.stage()
        fops = self._fops
        source_paths = self._source_paths
        try:
            for path in source_paths:
                self._sources.append(
                    SWSTIndex.open(path, self._old_config))
        except BaseException:
            for source in self._sources:
                with contextlib.suppress(StorageError, OSError):
                    source.close()
            self._sources.clear()
            raise
        clocks = {source.now for source in self._sources}
        if len(clocks) > 1:
            raise ReshardError(
                f"shard clocks disagree in {self._dir!r}: "
                f"{sorted(clocks)}; the directory mixes snapshots")
        self._engine = self._new_engine()
        self._engine.advance_time(self._sources[0].now)
        self._stream_entries()
        self._carry_over_state()
        for source in self._sources:
            source.close()
        self._sources.clear()
        for path in source_paths:
            fops.unlink(path)
        self._source_paths = []
        fops.fsync_dir(self._gen_dir)

    def _clear_debris(self) -> None:
        """Drop files a previously crashed build left in the gen dir."""
        fops = self._fops
        cleared = False
        names = [_source_file_name(sid) for sid in range(self._old_n)]
        names += [_shard_file_name(sid)
                  for sid in range(self._new_config.n_shards)]
        for name in names:
            path = os.path.join(self._gen_dir, name)
            if os.path.exists(path):
                fops.unlink(path)
                cleared = True
        if cleared:
            fops.fsync_dir(self._gen_dir)

    def _new_engine(self) -> ShardedEngine:
        """Fresh empty engine over the new generation's shard files."""
        engine = ShardedEngine.__new__(ShardedEngine)
        engine.config = self._new_config
        engine._init_common(self._executor, None, CircuitBreaker, None,
                            self._fops)
        engine._snapshots = self._snapshots
        engine._dir = self._dir
        engine._generation = self._new_generation
        engine._epoch = self._epoch
        engine._shards = []
        try:
            for shard_id in range(self._new_config.n_shards):
                engine._shards.append(
                    SWSTIndex(self._new_config,
                              engine.shard_path(shard_id)))
        except BaseException:
            engine._abandon()
            raise
        return engine

    def _stream_entries(self) -> None:
        """Route every physical entry through the new shard map."""
        engine = self.engine
        shards = engine._shards
        for source in self._sources:
            for entry in source.scan():
                shards[engine._shard_id_of(entry.x,
                                           entry.y)]._physical_insert(entry)
                self._entries += 1

    def _carry_over_state(self) -> None:
        """Current-entry table, home map and retentions follow the data."""
        engine = self.engine
        retentions: dict[int, int] = {}
        currents: dict[int, tuple[int, int, int]] = {}
        for source in self._sources:
            retentions.update(source._retentions)
            currents.update(source.current_objects())
        for oid, (x, y, s) in currents.items():
            shard_id = engine._shard_id_of(x, y)
            engine._shards[shard_id]._current[oid] = (x, y, s)
            engine._home[oid] = shard_id
        for shard in engine._shards:
            shard._retentions.update(retentions)
        self._currents = len(currents)

    # -- stage 3+4: flip and cleanup ------------------------------------------

    def commit(self) -> ReshardReport:
        """Save the new shards, flip the manifest, drop the old files.

        The manifest rewrite is the single commit point: the old
        generation is untouched before it, the new one is durable when
        it lands.  No PREPARE marker is written — a marker names a shard
        count, and a reopen mid-flip must classify against whichever
        manifest survived, not against a count that may not match it.
        """
        engine = self.engine
        fops = self._fops
        for shard in engine._shards:
            shard.save()
        gens = [shard.pager.generation for shard in engine._shards]
        fops.fsync_dir(self._gen_dir)
        write_json_atomic(
            fops, self._dir, os.path.join(self._dir, _MANIFEST_NAME),
            {"format": _MANIFEST_FORMAT,
             "n_shards": self._new_config.n_shards,
             "epoch": self._epoch + 1, "shards": gens,
             "generation": self._new_generation})
        engine._epoch = self._epoch + 1
        engine._mutated = False
        self._committed = True
        if self._snapshots:
            # The new shard files are clean (just saved): snapshot them
            # so the next save's torn window — or a mid-session crash —
            # stays recoverable without waiting for another save.
            engine._write_epoch_snapshot()
        self._cleanup_old_generation()
        fops.fsync_dir(self._dir)
        old_map = GridShardMap(self._old_config.x_partitions,
                               self._old_config.y_partitions, self._old_n)
        return ReshardReport(
            directory=self._dir,
            old_n_shards=self._old_n,
            new_n_shards=self._new_config.n_shards,
            epoch=engine._epoch,
            generation=self._new_generation,
            entries=self._entries,
            currents=self._currents,
            old_imbalance=old_map.imbalance(),
            new_imbalance=engine.shard_map.imbalance())

    def _cleanup_old_generation(self) -> None:
        """Post-flip: unlink the old generation and stale snapshots.

        Every step here is redundant with the flip — a crash costs only
        disk space, and reopening serves the new generation regardless.
        CoW snapshots of *older* epochs copy old-generation shard
        files, so they are stale as a unit; only the freshly written
        ``snapshots/<new epoch>/`` (new-generation copies) survives.
        """
        fops = self._fops
        for shard_id in range(self._old_n):
            for name in (_shard_file_name(shard_id),
                         wal_file_name(shard_id),
                         base_file_name(shard_id)):
                path = os.path.join(self._old_gen_dir, name)
                if os.path.exists(path):
                    fops.unlink(path)
        fops.fsync_dir(self._old_gen_dir)
        if self._old_generation > 0:
            fops.rmdir(self._old_gen_dir)
        snap_root = os.path.join(self._dir, _SNAPSHOTS_DIR)
        if os.path.isdir(snap_root):
            keep = f"{self._epoch + 1:06d}"
            for name in sorted(os.listdir(snap_root)):
                stale = os.path.join(snap_root, name)
                if name == keep or not os.path.isdir(stale):
                    continue
                for file_name in sorted(os.listdir(stale)):
                    fops.unlink(os.path.join(stale, file_name))
                fops.rmdir(stale)
            if os.listdir(snap_root):
                fops.fsync_dir(snap_root)
            else:
                fops.rmdir(snap_root)
                fops.fsync_dir(self._dir)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the built engine (offline callers; online ones adopt it)."""
        if self._engine is not None:
            engine, self._engine = self._engine, None
            engine.close()

    def detach_engine(self) -> ShardedEngine:
        """Hand the built engine to the caller (it owns closing it now)."""
        engine = self.engine
        self._engine = None
        return engine

    def abort(self) -> None:
        """Release every handle after a failure; never raises.

        Only handles: a genuine crash could not delete staged files
        either, and the protocol tolerates the debris (the old
        generation still opens; the next build clears the staging
        directory; scrub reports it).
        """
        for source in self._sources:
            with contextlib.suppress(StorageError, OSError, ValueError):
                source.close()
        self._sources.clear()
        if self._engine is not None:
            engine, self._engine = self._engine, None
            engine._abandon()


def reshard(directory: str, new_n_shards: int, config: SWSTConfig, *,
            executor: Executor | None = None,
            file_ops: FileOps | None = None,
            snapshots: bool = True) -> ReshardReport:
    """Offline reshard: build, flip and clean up in one call.

    ``config`` supplies the index parameters (its ``n_shards`` is
    ignored — the old count comes from the manifest, the new one from
    ``new_n_shards``).  Returns a :class:`ReshardReport`; on any
    failure the directory still opens as the old generation.
    """
    build = GenerationBuild(directory, new_n_shards, config,
                            executor=executor, file_ops=file_ops,
                            snapshots=snapshots)
    try:
        build.build()
        report = build.commit()
    except BaseException:
        build.abort()
        raise
    build.close()
    return report
