"""Worker-pool abstraction for per-shard scatter-gather.

The engine fans operations out over its shards through a minimal
:class:`Executor` protocol — ``map`` (with an optional per-task
deadline) plus ``close`` — so the execution strategy is pluggable:

* :class:`SerialExecutor` runs tasks inline (deterministic, zero
  overhead; the right choice for tests and one-shard engines).
* :class:`ThreadedExecutor` (the default) runs tasks on a thread pool.
  The shard hot path is buffer-pool IO plus C-level ``struct``/``zlib``
  work, and shards share no mutable state, so threads overlap shard IO
  and, on free-threaded builds, shard CPU as well.
* :class:`ProcessExecutor` runs tasks on a process pool for true CPU
  parallelism under the GIL.  Processes cannot see the parent's live
  shard objects, so the engine only accepts it for *read-only* fan-out
  against a saved shard directory: each task opens its shard from disk
  inside the worker (see ``ShardedEngine``'s ``remote`` handling),
  through the worker-local handle cache below so a repeated-query
  workload pays the open once per (shard, save epoch) instead of once
  per query.  A broken pool (worker killed mid-task) is discarded so
  the next ``map`` starts a fresh one — paired with the engine's
  :class:`~repro.engine.retry.RetryPolicy` this makes worker death a
  transient, retryable fault.

All three preserve input order in their results and propagate the first
raised exception.

Per-task deadlines: ``map(fn, items, timeout=...)`` bounds how long the
caller waits for each task.  Pool executors enforce it when *gathering*
(``future.result(timeout)``) and convert an overrun into a typed
:class:`~repro.engine.errors.TaskTimeoutError` naming the input index.
The task itself is not preempted — an abandoned worker may still hold
its shard, which is why the engine treats timeouts as non-retryable.
``SerialExecutor`` runs inline and cannot enforce a deadline; it ignores
``timeout`` (documented, not an error, so one-shard engines keep
working unchanged).
"""

from __future__ import annotations

import atexit
import contextlib
import os
from typing import (TYPE_CHECKING, Any, Callable, Iterable, Protocol,
                    Sequence, runtime_checkable)

from ..storage.errors import StorageError
from .errors import TaskTimeoutError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from concurrent.futures import (Future, ProcessPoolExecutor,
                                    ThreadPoolExecutor)


# -- worker-local shard handle cache ------------------------------------------
#
# Remote (process-pool) query tasks cannot see the parent's live shards,
# so historically every task reopened its shard from disk — catalog
# parse, buffer pool from cold — which dwarfs the per-query cost on a
# repeated-dashboard workload.  Queries are read-only and the engine
# refuses remote fan-out over unsaved mutations, so a worker may keep
# the handle open and reuse it for as long as the directory's save
# *epoch* is unchanged: the engine stamps each task with its manifest
# epoch, and an epoch bump (a new save rewrote the shard files in
# place) closes the stale handle and reopens.  The cache is per worker
# process; handles are closed at worker exit.

_WORKER_SHARD_CAP = 32

#: path -> (save epoch, open shard handle).  Worker-process-local.
_worker_shards: dict[str, tuple[int, Any]] = {}
_worker_cleanup_registered = False


def _close_handle(handle: Any) -> None:
    with contextlib.suppress(OSError, StorageError, ValueError):
        handle.close()


def _close_worker_shards() -> None:
    while _worker_shards:
        _, (_, handle) = _worker_shards.popitem()
        _close_handle(handle)


def open_worker_shard(path: str, epoch: int,
                      opener: Callable[[], Any]) -> Any:
    """Per-process memoised shard open for remote read-only tasks.

    Returns the cached handle for ``path`` if it was opened at the same
    save ``epoch``; otherwise closes any stale handle, opens a fresh one
    via ``opener`` and caches it.  The cache is bounded: at
    ``_WORKER_SHARD_CAP`` entries it is cleared wholesale (directories
    come and go in tests; steady-state serving uses one directory).
    """
    global _worker_cleanup_registered
    cached = _worker_shards.get(path)
    if cached is not None:
        if cached[0] == epoch:
            return cached[1]
        del _worker_shards[path]
        _close_handle(cached[1])
    handle = opener()
    if len(_worker_shards) >= _WORKER_SHARD_CAP:
        _close_worker_shards()
    _worker_shards[path] = (epoch, handle)
    if not _worker_cleanup_registered:
        _worker_cleanup_registered = True
        atexit.register(_close_worker_shards)
    return handle


def discard_worker_shard(path: str) -> None:
    """Drop (and close) ``path``'s cached handle, if any.

    Called by the remote task wrapper when an attempt fails: the retry
    then starts from a fresh open instead of reusing a handle whose
    device may be mid-failure.
    """
    cached = _worker_shards.pop(path, None)
    if cached is not None:
        _close_handle(cached[1])


@runtime_checkable
class Executor(Protocol):
    """Minimal worker-pool protocol used by the engine.

    Attributes:
        remote: True if tasks run outside the engine's process (the
            engine then ships picklable task descriptors instead of
            closures over live shards).
    """

    remote: bool

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout: float | None = None) -> list[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        ``timeout`` is a per-task deadline in seconds; a task overrunning
        it raises :class:`TaskTimeoutError` (best effort — inline
        executors cannot enforce it).
        """
        ...  # pragma: no cover - protocol

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        """Run one zero-argument task, returning its future.

        The asynchronous serving facade bridges these futures into
        ``asyncio`` (``asyncio.wrap_future``), so blocking engine calls
        ride the same pluggable pool as the scatter-gather fan-out.
        ``SerialExecutor`` runs the task inline and returns an
        already-resolved future (deterministic tests).
        """
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pool resources; the executor is unusable afterwards."""
        ...  # pragma: no cover - protocol


def _gather(futures: "Sequence[Future[Any]]",
            timeout: float | None) -> list[Any]:
    """Collect future results in submission order with per-task deadlines.

    ``future.result()`` re-raises the task's exception; remaining futures
    are awaited by the pool's ``shutdown(wait=True)`` on close.  A
    deadline overrun is converted to :class:`TaskTimeoutError` carrying
    the input index, so callers can map it back to a shard.
    """
    from concurrent.futures import TimeoutError as FuturesTimeout

    results = []
    for index, future in enumerate(futures):
        try:
            results.append(future.result(timeout=timeout))
        except FuturesTimeout:
            raise TaskTimeoutError(index, timeout or 0.0) from None
    return results


class SerialExecutor:
    """Run every task inline on the calling thread.

    Inline execution cannot be preempted, so the ``timeout`` parameter
    is accepted for protocol compatibility and ignored.
    """

    remote = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout: float | None = None) -> list[Any]:
        return [fn(item) for item in items]

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        from concurrent.futures import Future

        future: Future[Any] = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn())
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def close(self) -> None:
        pass


class ThreadedExecutor:
    """Thread-pool executor (the engine default).

    The pool is created lazily on first use, so an engine that only ever
    touches one shard per operation never spawns a thread.  Single-item
    maps run inline — unless a deadline is set, which forces the pool so
    the deadline is enforceable.
    """

    remote = False

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            workers = self._max_workers
            if workers is None:
                workers = min(32, (os.cpu_count() or 1) + 4)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="swst-shard")
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout: float | None = None) -> list[Any]:
        work: Sequence[Any] = list(items)
        if len(work) <= 1 and timeout is None:
            return [fn(item) for item in work]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in work]
        return _gather(futures, timeout)

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        return self._ensure_pool().submit(fn)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor:
    """Process-pool executor for read-only scatter-gather.

    Tasks and their results must be picklable; the engine pairs this
    executor with module-level task functions that reopen shards from
    disk, so it is only valid against a saved, unmodified engine.

    If the pool breaks (a worker process dies, every pending task fails
    with ``BrokenExecutor``), the broken pool is discarded so the *next*
    ``map`` call transparently builds a fresh one.  The failed call
    still raises — recovery is the caller's retry policy's job.

    A per-task deadline overrun *abandons* futures instead of breaking
    the pool: the timed-out task (and any task submitted after it that
    cannot be cancelled) keeps running on a pool process with nobody
    waiting for its result.  Each abandoned future occupies one worker
    slot, so a run of timeouts can quietly starve the pool down to zero
    usable workers while every later ``map`` still *looks* healthy.
    The executor therefore counts abandonments (``abandoned_futures``)
    and, once they could plausibly cover every worker slot, recycles
    the pool — old processes are left to finish detached and the next
    ``map`` starts fresh (``pool_recycles`` counts these).

    Attributes:
        abandoned_futures: tasks abandoned to deadline overruns in the
            *current* pool (an upper bound: a straggler finishing after
            its abandonment is not un-counted).
        pool_recycles: pools discarded because abandonment reached the
            worker count.
    """

    remote = True

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self.abandoned_futures = 0
        self.pool_recycles = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout: float | None = None) -> list[Any]:
        from concurrent.futures import BrokenExecutor

        work: Sequence[Any] = list(items)
        if not work:
            return []
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in work]
        try:
            return _gather(futures, timeout)
        except BrokenExecutor:
            # The pool is dead; drop it so the next map self-heals.
            pool.shutdown(wait=False)
            self._pool = None
            self.abandoned_futures = 0
            raise
        except TaskTimeoutError:
            # Whatever cannot be cancelled is abandoned on a worker.
            for future in futures:
                if not future.cancel() and not future.done():
                    self.abandoned_futures += 1
            workers = self._max_workers or os.cpu_count() or 1
            if self.abandoned_futures >= workers:
                # Every worker slot may be wedged behind an abandoned
                # task; recycle so the next map gets live processes.
                pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                self.abandoned_futures = 0
                self.pool_recycles += 1
            raise

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        return self._ensure_pool().submit(fn)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(spec: str) -> SerialExecutor | ThreadedExecutor | \
        ProcessExecutor:
    """Build an executor from a CLI-style spec.

    Accepted forms: ``serial``, ``thread``, ``thread:N``, ``process``,
    ``process:N`` (N = worker count).
    """
    kind, _, arg = spec.partition(":")
    workers = int(arg) if arg else None
    if workers is not None and workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    if kind == "serial":
        if arg:
            raise ValueError("serial executor takes no worker count")
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(max_workers=workers)
    if kind == "process":
        return ProcessExecutor(max_workers=workers)
    raise ValueError(f"unknown executor spec {spec!r} "
                     f"(expected serial | thread[:N] | process[:N])")
