"""Warm worker pool: per-shard processes, WAL durability, supervision.

:class:`WorkerEngine` is the writable counterpart of a
:class:`~repro.engine.engine.ShardedEngine` driven by a process
executor.  Instead of read-only fan-out over saved shards, it runs one
long-lived **worker process per shard** (shard -> worker affinity) that
holds its shard's :class:`~repro.core.index.SWSTIndex` open read-write
across tasks.  The coordinator never touches shard internals; it routes
operations, mirrors just enough state to validate and route
(the current-entry table and the clock), and ships each shard a batch
of :mod:`~repro.engine.wal` ops.

**Durability.**  A worker acknowledges a mutation batch only after the
ops are appended to the shard's write-ahead log and fsynced (one fsync
per batch — group commit) *and* applied to the in-memory index.  The
page file itself is only made consistent at epoch commits
(:meth:`WorkerEngine.save`, the same two-phase PREPARE/FLIP protocol as
``ShardedEngine``); between commits the WAL is the durable record.  A
worker therefore *always* shuts its shard down with
:meth:`~repro.core.index.SWSTIndex.abort` — a graceful stop and a
SIGKILL leave the same on-disk state, and restart recovery is one code
path, not two.

**Recovery (worker start).**

1. Open the page file; if storage recovery refuses it (a crash left
   evicted pages past the committed generation), restore the shard's
   *base snapshot* — a byte copy of the page file taken at the last
   checkpoint — and open that.
2. Refresh the base from the (now consistent) page file, so the base
   and the WAL always describe the same starting state.
3. Read the WAL: epoch behind the manifest -> stale (its ops are inside
   the committed snapshot), reset it; epoch equal -> replay every
   record; epoch ahead -> refuse (typed
   :class:`~repro.engine.errors.WalCorruptError`).

**Supervision.**  The coordinator detects worker death three ways: the
pipe reports EOF (process exited or was SIGKILLed), a request overruns
the ``heartbeat_timeout`` deadline (poison task — the worker is then
killed), or a spawn reports a fatal error.  Dead workers are restarted
under the engine's :class:`~repro.engine.retry.RetryPolicy` with a
per-shard :class:`~repro.engine.retry.CircuitBreaker` gating the
attempts; a restart replays the WAL tail, so every acknowledged write
survives.  Queries retry across restarts; **mutations never retry**
(the caller cannot know whether the batch was fsynced before the crash
— re-submitting position reports is idempotent and converges, but the
engine will not guess).  ``strict=False`` queries degrade to
:class:`~repro.engine.engine.PartialResult` while a shard is
mid-restart or its breaker is open.

**Epoch commit.**  ``save()`` aligns every shard's clock, records each
worker's expected header generation in the PREPARE marker, saves every
shard (in-worker ``SWSTIndex.save``), flips the manifest, unlinks the
marker, then checkpoints each worker (refresh base, reset WAL to the
new epoch).  A failure anywhere kills every worker and runs the same
marker resolution ``open()`` uses, so no worker can keep acknowledging
into a stale-epoch WAL.  Unlike ``ShardedEngine``, a crash *between*
shard commits is recoverable: pending shards' WALs are rebased to the
new epoch (their acknowledged tails replay over their old base), so
``EpochTornError`` cannot happen here — the WAL upgrades the two-phase
commit from "atomic or typed refusal" to "always roll forward".
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import signal
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..core.config import SWSTConfig
from ..core.grid import SpatialGrid
from ..core.index import SWSTIndex
from ..core.overlap import classify_interval
from ..core.plan import PlanCache, QueryPlan, build_query_plan
from ..core.records import Entry, Rect, ReportLike
from ..core.results import MultiQueryResult, QueryResult, QueryStats
from ..storage.errors import NoCatalogError, StorageError
from ..storage.fault import FaultInjectingFileOps
from ..storage.fileops import DURABLE_FILE_OPS, FileOps
from ..storage.stats import IOStats
from .engine import (_MANIFEST_FORMAT, _MANIFEST_NAME, _PREPARE_NAME,
                     PartialResult, _load_prepare, _shard_file_name,
                     generation_dir, load_manifest, probe_prepare_state,
                     write_json_atomic)
from .errors import (CircuitOpenError, EngineClosedError, EngineCloseError,
                     EngineError, ShardFailure, ShardQueryError,
                     WalCorruptError, WorkerCrashError, WorkerRecoveryError)
from .retry import CircuitBreaker, RetryPolicy
from .sharding import GridShardMap
from .wal import (OP_ADVANCE, OP_CLOSE, OP_DELETE, OP_FORGET, OP_INSERT,
                  OP_RETAIN, OP_RUN, NONE_ARG, WalWriter, apply_record,
                  base_file_name, read_wal, rebase_wal, wal_file_name,
                  WalRecord)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext

#: Failures a degraded query fan-out absorbs into ``ShardFailure``.
_SHARD_FAILURE_ERRORS = (StorageError, OSError, EngineError)

#: Per-op errors a worker survives (reported, connection stays up).
_RECOVERABLE_OP_ERRORS = (ValueError, KeyError, AssertionError)

_ERR_TYPES: dict[str, type[Exception]] = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "AssertionError": AssertionError,
}


def _mp_context() -> "BaseContext":
    """Fork where available (configs need no pickling), default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _copy_file_atomic(src: str, dst: str, fops: FileOps) -> None:
    """Durably copy ``src`` over ``dst`` (temp + fsync + rename)."""
    with open(src, "rb") as handle:
        blob = handle.read()
    tmp = dst + ".tmp"
    fops.write_file(tmp, blob)
    fops.replace(tmp, dst)
    fops.fsync_dir(os.path.dirname(os.path.abspath(dst)))


# -- worker process ----------------------------------------------------------


def _die() -> None:
    """Scripted kill point: die exactly as SIGKILL would."""
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_fops(spec: dict[str, Any]) -> FileOps:
    """WAL/base file ops for this worker, fault-injected when scripted."""
    keys = ("wal_fail_op", "wal_op_errors", "wal_short_writes",
            "wal_fsync_errors")
    if not any(key in spec for key in keys):
        return DURABLE_FILE_OPS
    return FaultInjectingFileOps(
        fail_op=spec.get("wal_fail_op"),
        op_errors=spec.get("wal_op_errors"),
        short_writes=spec.get("wal_short_writes"),
        fsync_errors=spec.get("wal_fsync_errors"))


def _open_recovered(shard_id: int, config: SWSTConfig, fops: FileOps,
                    epoch: int, path: str, base_path: str) -> SWSTIndex:
    """Open the shard's page file, falling back to its base snapshot.

    At epoch 0 nothing was ever committed — the durable starting state
    is "empty" (a pre-first-save base has no catalog either), which a
    fresh file plus the epoch-0 WAL reproduces exactly.  At a committed
    epoch the base snapshot stands in for an unrecoverable page file
    (mid-session kills leave evicted pages past the committed
    generation, which storage recovery rightly refuses).
    """

    def open_from_base() -> SWSTIndex:
        _copy_file_atomic(base_path, path, fops)
        try:
            return SWSTIndex.open(path, config)
        except NoCatalogError:
            # The base predates the shard's first commit (a partially
            # committed first epoch rolled forward): the durable base
            # state is "empty", and the rebased WAL carries the whole
            # acknowledged history from there.
            os.unlink(path)
            return SWSTIndex(config, path)

    if os.path.exists(path):
        try:
            return SWSTIndex.open(path, config)
        except (StorageError, OSError) as exc:
            if epoch == 0:
                os.unlink(path)
                return SWSTIndex(config, path)
            if os.path.exists(base_path):
                return open_from_base()
            raise WorkerRecoveryError(
                shard_id, f"page file unrecoverable ({exc!r}) and "
                          f"no base snapshot exists") from exc
    if epoch == 0:
        return SWSTIndex(config, path)
    if os.path.exists(base_path):
        return open_from_base()
    raise WorkerRecoveryError(
        shard_id, f"page file missing, no base snapshot, and the "
                  f"manifest claims committed epoch {epoch}")


def _recover_shard(shard_id: int, directory: str, config: SWSTConfig,
                   fops: FileOps, spec: dict[str, Any],
                   generation: int) -> tuple[SWSTIndex, WalWriter, int]:
    """Rebuild one shard from page file + base snapshot + WAL.

    Returns ``(shard, wal_writer, replayed_record_count)``.  Raises
    :class:`WorkerRecoveryError` when no recovery path exists (terminal
    — restarting again cannot help).
    """
    gen_dir = generation_dir(directory, generation)
    path = os.path.join(gen_dir, _shard_file_name(shard_id))
    base_path = os.path.join(gen_dir, base_file_name(shard_id))
    wal_path = os.path.join(gen_dir, wal_file_name(shard_id))
    manifest = load_manifest(os.path.join(directory, _MANIFEST_NAME))
    epoch: int = manifest["epoch"]
    shard = _open_recovered(shard_id, config, fops, epoch, path, base_path)
    try:
        # Refresh the base *before* replay: from here on, base + WAL is
        # exactly the state this session acknowledges against.
        _copy_file_atomic(path, base_path, fops)
        replayed = 0
        if os.path.exists(wal_path):
            scan = read_wal(wal_path)
            if scan.epoch > epoch:
                raise WalCorruptError(
                    wal_path, f"claims epoch {scan.epoch} ahead of "
                              f"manifest epoch {epoch}")
            if scan.epoch == epoch:
                writer, scan = WalWriter.resume(wal_path, fops)
                kill_after = spec.get("kill_at_replay")
                for record in scan.records:
                    apply_record(shard, record)
                    replayed += 1
                    if kill_after is not None and replayed == kill_after:
                        _die()
            else:
                writer = WalWriter.reset(wal_path, fops, epoch=epoch)
        else:
            writer = WalWriter.reset(wal_path, fops, epoch=epoch)
    except BaseException:
        shard.abort()
        raise
    return shard, writer, replayed


def _apply_batch(shard: SWSTIndex, writer: WalWriter,
                 batch: list[tuple[int, tuple[int, ...]]],
                 spec: dict[str, Any], batch_index: int) -> list[Any]:
    """Log, group-commit, then apply one mutation batch.

    The acknowledgement the caller sends after this returns is the
    durability barrier: everything here is fsynced and applied, or the
    worker died and nothing was acknowledged.
    """
    if spec.get("hang_at_apply") == batch_index:
        signal.pause()  # poison task: never answers
    records = [WalRecord(writer.log(op, args), op, tuple(args))
               for op, args in batch]
    if spec.get("kill_before_commit") == batch_index:
        _die()
    writer.commit()
    if spec.get("kill_after_commit") == batch_index:
        _die()
    results: list[Any] = []
    for record in records:
        if record.op == OP_CLOSE:
            results.append(shard.close_object(record.args[0],
                                              record.args[1]))
        elif record.op == OP_DELETE:
            oid, x, y, s, d = record.args
            results.append(shard.delete(
                oid, x, y, s, None if d == NONE_ARG else d))
        elif record.op == OP_FORGET:
            results.append(shard.forget_object(record.args[0]))
        else:
            apply_record(shard, record)
            results.append(None)
    if spec.get("kill_after_apply") == batch_index:
        _die()
    return results


def _checkpoint(shard_id: int, directory: str, fops: FileOps,
                epoch: int, generation: int) -> WalWriter:
    """Refresh the base from the just-committed page file, reset the WAL."""
    gen_dir = generation_dir(directory, generation)
    path = os.path.join(gen_dir, _shard_file_name(shard_id))
    base_path = os.path.join(gen_dir, base_file_name(shard_id))
    wal_path = os.path.join(gen_dir, wal_file_name(shard_id))
    _copy_file_atomic(path, base_path, fops)
    return WalWriter.reset(wal_path, fops, epoch=epoch)


def _worker_main(shard_id: int, directory: str, config: SWSTConfig,
                 conn: "Connection", spec: dict[str, Any] | None,
                 generation: int = 0) -> None:
    """Entry point of one warm worker process."""
    spec = spec or {}
    fops = _worker_fops(spec)
    try:
        shard, writer, replayed = _recover_shard(shard_id, directory,
                                                 config, fops, spec,
                                                 generation)
    except BaseException as exc:
        with contextlib.suppress(OSError, ValueError):
            conn.send(("fatal", (type(exc).__name__, str(exc))))
        os._exit(3)
    if spec.get("kill_at_ready"):
        _die()
    conn.send(("ready", {"now": shard.now,
                         "current": shard.current_objects(),
                         "replayed": replayed,
                         "next_seq": writer.next_seq}))
    batches_seen = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Coordinator is gone; leave crash-equivalent state behind.
            shard.abort()
            os._exit(0)
        kind, payload = message
        try:
            if kind == "apply":
                batches_seen += 1
                value: Any = (_apply_batch(shard, writer, payload, spec,
                                           batches_seen), writer.next_seq)
            elif kind == "query":
                method, args = payload
                value = getattr(shard, method)(*args)
            elif kind == "resync":
                value = {"now": shard.now,
                         "current": shard.current_objects()}
            elif kind == "scan":
                value = list(shard.scan())
            elif kind == "len":
                value = len(shard)
            elif kind == "stats":
                value = shard.stats.snapshot()
            elif kind == "gen_info":
                value = (shard.pager.generation,
                         shard.pager.session_marked)
            elif kind == "save":
                if spec.get("kill_at_save"):
                    _die()
                shard.save()
                if spec.get("kill_after_save"):
                    _die()
                value = shard.pager.generation
            elif kind == "checkpoint":
                if spec.get("kill_at_checkpoint"):
                    _die()
                writer = _checkpoint(shard_id, directory, fops, payload,
                                     generation)
                value = writer.next_seq
            elif kind == "stop":
                conn.send(("ok", None))
                shard.abort()
                conn.close()
                os._exit(0)
            else:
                raise ValueError(f"unknown worker request {kind!r}")
        except _RECOVERABLE_OP_ERRORS as exc:
            conn.send(("err", (type(exc).__name__, str(exc))))
            continue
        except BaseException as exc:
            # Anything else (storage corruption, injected IO faults) is
            # fatal: the WAL/page state may be half-written, so the only
            # safe continuation is a restart-and-replay.
            with contextlib.suppress(OSError, ValueError):
                conn.send(("fatal", (type(exc).__name__, str(exc))))
            os._exit(3)
        conn.send(("ok", value))


# -- coordinator side --------------------------------------------------------


@dataclasses.dataclass
class _Handle:
    """Coordinator-side record of one live worker.

    ``pending`` counts sent-but-uncollected requests: when a pipelined
    fan-out aborts between its send and collect loops, the orphaned
    responses stay queued in the pipe and must be drained before the
    next request, or they would be mis-read as that request's answer.
    """

    process: Any
    conn: "Connection"
    pending: int = 0


class WorkerPool:
    """Supervised pool of per-shard worker processes.

    Owns process lifecycle only: spawn (with WAL recovery handshake),
    synchronous request/response over a private pipe, heartbeat
    deadlines, kill and graceful stop.  Restart *policy* — retries,
    breakers, engine resynchronisation — lives in
    :class:`WorkerEngine`, which records outcomes on the gathering side
    (invariant R005: nothing here mutates engine state from a task).

    Args:
        directory: the engine's shard directory.
        config: shared index configuration.
        heartbeat_timeout: seconds a request (or a spawn handshake) may
            take before the worker is declared dead and killed; ``None``
            waits forever.
        fault_specs: optional per-shard fault scripts passed to the
            worker at spawn (crash-matrix seam).  A spec is consumed by
            the first spawn unless it sets ``"persistent": True``.
        generation: manifest generation whose shard files the workers
            serve (see :func:`~repro.engine.engine.generation_dir`);
            the engine updates it from the manifest before any spawn.
    """

    def __init__(self, directory: str, config: SWSTConfig, *,
                 heartbeat_timeout: float | None = None,
                 fault_specs: dict[int, dict[str, Any]] | None = None,
                 generation: int = 0) -> None:
        self.directory = directory
        self.config = config
        self.heartbeat_timeout = heartbeat_timeout
        self.fault_specs = dict(fault_specs or {})
        self.generation = generation
        self.spawn_counts = [0] * config.n_shards
        self._handles: dict[int, _Handle] = {}
        self._ctx = _mp_context()

    def alive(self, shard_id: int) -> bool:
        handle = self._handles.get(shard_id)
        return handle is not None and handle.process.is_alive()

    def live_shards(self) -> list[int]:
        return sorted(sid for sid in self._handles if self.alive(sid))

    def spawn(self, shard_id: int) -> dict[str, Any]:
        """Start (or restart) one worker; returns its ready info.

        The ready handshake completes WAL recovery first, so a returned
        worker is fully caught up to its acknowledged state.
        """
        if self.alive(shard_id):
            raise EngineError(f"worker {shard_id} is already running")
        self._discard(shard_id)
        spec = self.fault_specs.get(shard_id)
        if spec is not None and not spec.get("persistent"):
            del self.fault_specs[shard_id]
        # The pipe is created immediately before the fork and the child
        # end closed right after, so no later-forked sibling inherits
        # it — EOF on the parent end then reliably signals death.
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(shard_id, self.directory, self.config, child_conn, spec,
                  self.generation),
            daemon=True, name=f"swst-shard-{shard_id}")
        process.start()
        child_conn.close()
        handle = _Handle(process, parent_conn)
        self._handles[shard_id] = handle
        self.spawn_counts[shard_id] += 1
        tag, value = self._recv(shard_id, handle)
        if tag == "fatal":
            self._reap(shard_id)
            name, detail = value
            if name in ("WorkerRecoveryError", "WalCorruptError"):
                raise WorkerRecoveryError(shard_id, f"{name}: {detail}")
            raise WorkerCrashError(shard_id,
                                   f"failed to start: {name}: {detail}")
        if tag != "ready":
            self._reap(shard_id)
            raise WorkerCrashError(shard_id,
                                   f"unexpected handshake {tag!r}")
        info: dict[str, Any] = value
        return info

    def send(self, shard_id: int, kind: str, payload: Any = None) -> None:
        """Queue one request; pair with :meth:`collect`."""
        self.drain(shard_id)
        handle = self._handles.get(shard_id)
        if handle is None:
            raise WorkerCrashError(shard_id, "no running worker")
        try:
            handle.conn.send((kind, payload))
        except (OSError, ValueError) as exc:
            raise self._crashed(shard_id, repr(exc)) from exc
        handle.pending += 1

    def collect(self, shard_id: int,
                timeout: float | None = None) -> Any:
        """Receive one response; raises typed errors on failure/death."""
        handle = self._handles.get(shard_id)
        if handle is None:
            raise WorkerCrashError(shard_id, "no running worker")
        tag, value = self._recv(shard_id, handle, timeout)
        handle.pending = max(0, handle.pending - 1)
        if tag == "ok":
            return value
        if tag == "err":
            name, detail = value
            raise _ERR_TYPES.get(name, EngineError)(detail)
        self._reap(shard_id)
        name, detail = value
        raise WorkerCrashError(shard_id, f"fatal: {name}: {detail}")

    def pending(self, shard_id: int) -> int:
        """Sent-but-uncollected requests queued at one worker."""
        handle = self._handles.get(shard_id)
        return handle.pending if handle is not None else 0

    def drain(self, shard_id: int) -> None:
        """Discard responses orphaned by an aborted pipelined fan-out."""
        while True:
            handle = self._handles.get(shard_id)
            if handle is None or handle.pending == 0:
                return
            try:
                self.collect(shard_id)
            except (EngineError, ValueError, KeyError, AssertionError):
                # A crash reaps the handle (loop exits); per-op errors
                # just consumed one orphaned response.
                continue

    def request(self, shard_id: int, kind: str, payload: Any = None,
                timeout: float | None = None) -> Any:
        """Synchronous round trip: :meth:`send` + :meth:`collect`."""
        self.send(shard_id, kind, payload)
        return self.collect(shard_id, timeout)

    def _recv(self, shard_id: int, handle: _Handle,
              timeout: float | None = None) -> tuple[str, Any]:
        deadline = timeout if timeout is not None else self.heartbeat_timeout
        try:
            if deadline is not None and not handle.conn.poll(deadline):
                self.kill(shard_id)
                raise WorkerCrashError(
                    shard_id, f"no response within {deadline}s "
                              f"(heartbeat deadline); worker killed")
            message: tuple[str, Any] = handle.conn.recv()
            return message
        except (EOFError, OSError) as exc:
            raise self._crashed(shard_id, repr(exc)) from exc

    def _crashed(self, shard_id: int, detail: str) -> WorkerCrashError:
        """Reap a dead worker and build its typed error."""
        handle = self._handles.get(shard_id)
        exitcode = None
        if handle is not None:
            handle.process.join(1.0)
            if handle.process.is_alive():  # pipe broke, process wedged
                handle.process.kill()
                handle.process.join(5.0)
            exitcode = handle.process.exitcode
        self._reap(shard_id)
        return WorkerCrashError(shard_id,
                                f"worker died (exit code {exitcode}): "
                                f"{detail}")

    def kill(self, shard_id: int) -> None:
        """SIGKILL one worker and reap it (heartbeat overrun, save abort)."""
        handle = self._handles.get(shard_id)
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(5.0)
        self._reap(shard_id)

    def kill_all(self) -> None:
        for shard_id in list(self._handles):
            self.kill(shard_id)

    def stop(self, shard_id: int) -> None:
        """Graceful stop: the worker aborts its shard and exits cleanly."""
        handle = self._handles.get(shard_id)
        if handle is None:
            return
        try:
            handle.conn.send(("stop", None))
            # Ack then exit; a bounded wait so a wedged worker cannot
            # hang close() (it is killed below instead).
            handle.conn.poll(5.0)
        except (EOFError, OSError):
            pass
        handle.process.join(5.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(5.0)
        self._reap(shard_id)

    def stop_all(self) -> list[BaseException]:
        errors: list[BaseException] = []
        for shard_id in list(self._handles):
            try:
                self.stop(shard_id)
            except BaseException as exc:
                errors.append(exc)
        return errors

    def _reap(self, shard_id: int) -> None:
        self._discard(shard_id)

    def _discard(self, shard_id: int) -> None:
        handle = self._handles.pop(shard_id, None)
        if handle is not None:
            with contextlib.suppress(OSError):
                handle.conn.close()


class WorkerEngine:
    """Sharded engine served by a supervised warm worker pool.

    Mirrors the :class:`~repro.engine.engine.ShardedEngine` surface —
    ingestion (``insert``/``report``/``extend``/``close_object``/
    ``delete``/``set_retention``/``forget_object``/``advance_time``),
    queries (``query_timeslice``/``query_interval``/
    ``query_interval_many``/``count_interval``/``query_knn``/
    ``density_grid``/``object_history``), persistence (``save``/
    ``open``) and introspection — but every shard lives in its own
    process and every acknowledged mutation is WAL-durable.  A saved
    directory is interchangeable with ``ShardedEngine``'s (same
    manifest, same page files; the ``.wal``/``.pages.base`` files are
    additive).

    Always disk-backed: the WAL discipline has no meaning in memory.
    """

    def __init__(self, config: SWSTConfig | None = None,
                 path: str | None = None, *,
                 retry_policy: RetryPolicy | None = None,
                 breaker_factory: Callable[[], CircuitBreaker] | None
                 = CircuitBreaker,
                 heartbeat_timeout: float | None = None,
                 file_ops: FileOps | None = None,
                 fault_specs: dict[int, dict[str, Any]] | None = None
                 ) -> None:
        if path is None:
            raise EngineError("a warm-worker engine is always disk-backed; "
                              "pass a directory path")
        self.config = config if config is not None else SWSTConfig()
        self._dir = os.fspath(path)
        self._init_common(retry_policy, breaker_factory, heartbeat_timeout,
                          file_ops, fault_specs)
        self._prepare_directory()
        try:
            for shard_id in range(self.n_shards):
                self._ensure(shard_id)
            self._resync()
        except BaseException:
            self._abandon()
            raise

    def _init_common(self, retry_policy: RetryPolicy | None,
                     breaker_factory: Callable[[], CircuitBreaker] | None,
                     heartbeat_timeout: float | None,
                     file_ops: FileOps | None,
                     fault_specs: dict[int, dict[str, Any]] | None) -> None:
        self.grid = SpatialGrid(self.config.space, self.config.x_partitions,
                                self.config.y_partitions)
        self.shard_map = GridShardMap(self.config.x_partitions,
                                      self.config.y_partitions,
                                      self.config.n_shards)
        self._retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self._breakers: list[CircuitBreaker | None] = [
            breaker_factory() if breaker_factory is not None else None
            for _ in range(self.config.n_shards)]
        self._fops: FileOps = file_ops if file_ops is not None \
            else DURABLE_FILE_OPS
        self.pool = WorkerPool(self._dir, self.config,
                               heartbeat_timeout=heartbeat_timeout,
                               fault_specs=fault_specs)
        self._plans = PlanCache(self.config.plan_cache_size)
        #: oid -> (home shard, x, y, s) mirror of live current entries.
        self._cur: dict[int, tuple[int, int, int, int]] = {}
        self._shard_clocks = [0] * self.config.n_shards
        #: Per-shard expected WAL cursor (mirrors the worker's
        #: ``writer.next_seq`` after the last acknowledged request).
        self._next_seq = [0] * self.config.n_shards
        #: sid -> (seq cursor before the send, op batch) for a dispatch
        #: whose acknowledgement was lost to a worker crash.  Compared
        #: against the restarted worker's replayed cursor to re-deliver
        #: exactly the records that never became durable.
        self._inflight: dict[int,
                             tuple[int,
                                   list[tuple[int, tuple[int, ...]]]]] = {}
        self._clock = 0
        self._epoch = 0
        self._generation = 0
        self._needs_resync = False
        self._closed = False

    # -- directory ------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def directory(self) -> str:
        return self._dir

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def generation(self) -> int:
        """Manifest generation the live shard files inhabit (0 = root)."""
        return self._generation

    @property
    def breakers(self) -> tuple[CircuitBreaker | None, ...]:
        return tuple(self._breakers)

    def _set_generation(self, generation: int) -> None:
        """Adopt the manifest generation (before any worker spawns)."""
        self._generation = generation
        self.pool.generation = generation

    def shard_path(self, shard_id: int) -> str:
        return os.path.join(generation_dir(self._dir, self._generation),
                            _shard_file_name(shard_id))

    def wal_path(self, shard_id: int) -> str:
        return os.path.join(generation_dir(self._dir, self._generation),
                            wal_file_name(shard_id))

    def _manifest_path(self) -> str:
        return os.path.join(self._dir, _MANIFEST_NAME)

    def _prepare_path(self) -> str:
        return os.path.join(self._dir, _PREPARE_NAME)

    def _prepare_directory(self) -> None:
        if os.path.exists(self._dir) and not os.path.isdir(self._dir):
            raise EngineError(f"engine path {self._dir!r} exists and is "
                              f"not a directory")
        os.makedirs(self._dir, exist_ok=True)
        if os.path.exists(self._prepare_path()):
            raise EngineError(
                f"directory {self._dir!r} holds an interrupted save "
                f"(marker {_PREPARE_NAME}); recover it with "
                f"WorkerEngine.open() first")
        manifest_path = self._manifest_path()
        if os.path.exists(manifest_path):
            manifest = load_manifest(manifest_path)
            if manifest["n_shards"] != self.n_shards:
                raise EngineError(
                    f"directory {self._dir!r} holds {manifest['n_shards']} "
                    f"shards but config.n_shards is {self.n_shards}")
            self._epoch = manifest["epoch"]
            self._set_generation(manifest["generation"])
            return
        write_json_atomic(
            self._fops, self._dir, manifest_path,
            {"format": _MANIFEST_FORMAT, "n_shards": self.n_shards,
             "epoch": 0, "shards": [0] * self.n_shards, "generation": 0})

    def _abandon(self) -> None:
        if getattr(self, "_abandoned", False):
            return
        self._abandoned = True
        self._closed = True
        with contextlib.suppress(OSError, RuntimeError):
            self.pool.kill_all()

    # -- supervision ----------------------------------------------------------

    def _ensure(self, shard_id: int) -> None:
        """Make sure one worker is running, restarting under the policy.

        Restart outcomes feed the shard's circuit breaker: while the
        breaker is open the shard is failed fast with a typed
        :class:`CircuitOpenError` (no spawn attempted), which is what
        lets ``strict=False`` queries degrade instead of blocking on a
        crash-looping worker.
        """
        if self.pool.alive(shard_id):
            return
        breaker = self._breakers[shard_id]
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(shard_id)
        policy = dataclasses.replace(
            self._retry_policy,
            retryable=tuple(self._retry_policy.retryable)
            + (WorkerCrashError,))
        try:
            info = policy.call(lambda: self.pool.spawn(shard_id))
        except BaseException:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        self._absorb_ready(shard_id, info)

    def _absorb_ready(self, shard_id: int, info: dict[str, Any]) -> None:
        """Catch a restarted worker up to its acknowledged state.

        If a dispatch to this shard lost its acknowledgement to the
        crash, the replayed WAL cursor tells exactly how much of that
        batch became durable before the worker died; the non-durable
        suffix is re-delivered here, record for record, so the shard
        converges on precisely the state the no-crash run would have
        reached (sub-batch order is preserved, nothing double-applies).

        The coordinator's mirror is deliberately NOT rebuilt from the
        worker here: the mirror is write-through and may legitimately
        run *ahead* of the worker by exactly the ops a caller is about
        to dispatch (``_ingest_run`` updates it while building the
        batch).  Folding the worker's older current-table back in would
        erase those updates and mis-route the stream's next cross-shard
        finalisation.  Wholesale rebuilds happen only in ``_resync``,
        where every in-flight batch has been settled first.
        """
        self._next_seq[shard_id] = info["next_seq"]
        worker_now: int = info["now"]
        inflight = self._inflight.pop(shard_id, None)
        if inflight is not None:
            base, batch = inflight
            durable = max(0, min(len(batch), info["next_seq"] - base))
            suffix = batch[durable:]
            if suffix:
                # Track the redelivery itself: if this request crashes
                # too, the next restart re-derives the remaining tail.
                self._inflight[shard_id] = (self._next_seq[shard_id],
                                            suffix)
                _, next_seq = self.pool.request(shard_id, "apply", suffix)
                del self._inflight[shard_id]
                self._next_seq[shard_id] = next_seq
                state = self.pool.request(shard_id, "resync")
                worker_now = state["now"]
        self._shard_clocks[shard_id] = worker_now
        if worker_now > self._clock:
            # The worker replayed acknowledged-but-unreported ops from
            # an in-flight batch; siblings must catch up before the
            # next fan-out sees a mixed window boundary.
            self._clock = worker_now
            self._plans.invalidate()
            self._needs_resync = True
        elif worker_now < self._clock:
            _, next_seq = self.pool.request(
                shard_id, "apply", [(OP_ADVANCE, (self._clock,))])
            self._next_seq[shard_id] = next_seq
            self._shard_clocks[shard_id] = self._clock

    def _resync(self) -> None:
        """Re-derive the mirror and clock from every worker.

        Runs after any failed mutation dispatch (the coordinator can no
        longer know which shards applied their sub-batches) and on
        ``open()``.  Restarts dead workers, refetches every current
        table, and realigns straggler clocks with *logged* advances.
        """
        self._needs_resync = False
        try:
            for shard_id in range(self.n_shards):
                # Settle a sent-but-uncollected batch on a still-live
                # worker first: its acknowledgement is queued in the
                # pipe and carries the WAL cursor — discarding it would
                # corrupt the durable-suffix accounting.
                if shard_id in self._inflight \
                        and self.pool.alive(shard_id) \
                        and self.pool.pending(shard_id):
                    try:
                        _, next_seq = self.pool.collect(shard_id)
                        self._next_seq[shard_id] = next_seq
                        del self._inflight[shard_id]
                    except WorkerCrashError:
                        pass  # dead after all; _ensure redelivers
                self._ensure(shard_id)
            for shard_id in range(self.n_shards):
                self.pool.send(shard_id, "resync")
            states = [self.pool.collect(shard_id)
                      for shard_id in range(self.n_shards)]
            self._clock = max(self._clock,
                              *(state["now"] for state in states))
            self._cur.clear()
            for shard_id, state in enumerate(states):
                self._shard_clocks[shard_id] = state["now"]
                for oid, (x, y, s) in state["current"].items():
                    other = self._cur.get(oid)
                    if other is None or other[3] < s:
                        self._cur[oid] = (shard_id, x, y, s)
            stragglers = [sid for sid in range(self.n_shards)
                          if self._shard_clocks[sid] < self._clock]
            for sid in stragglers:
                self.pool.send(sid, "apply", [(OP_ADVANCE, (self._clock,))])
            for sid in stragglers:
                _, next_seq = self.pool.collect(sid)
                self._next_seq[sid] = next_seq
                self._shard_clocks[sid] = self._clock
        except BaseException:
            self._needs_resync = True
            raise

    def _settled(self) -> None:
        """Resync if the last mutation dispatch ended in a crash."""
        if self._needs_resync:
            self._resync()

    # -- mirror ---------------------------------------------------------------

    def _live_cur(self, oid: int) -> tuple[int, int, int, int] | None:
        """The mirror's current entry for ``oid`` if still in-window.

        Applies the same liveness rule the shards' window drop does
        (an entry whose start window has been dropped is gone), so the
        mirror never routes a finalisation at a record the shard
        already discarded.
        """
        cur = self._cur.get(oid)
        if cur is None:
            return None
        w_max = self.config.w_max
        if cur[3] // w_max < self._clock // w_max - 1:
            del self._cur[oid]
            return None
        return cur

    def _shard_id_of(self, x: int, y: int) -> int:
        cx, cy = self.grid.cell_of(x, y)
        return self.shard_map.shard_of_cell(cx, cy)

    def _shards_for_area(self, area: Rect) -> list[int]:
        ids: set[int] = set()
        for cell in self.grid.overlapping_cells(area):
            ids.add(self.shard_map.shard_of_cell(cell.cx, cell.cy))
            if len(ids) == self.n_shards:
                break
        return sorted(ids)

    # -- mutation dispatch -----------------------------------------------------

    def _dispatch(self, batches: dict[int, list[tuple[int,
                                                      tuple[int, ...]]]],
                  advance_to: int | None = None) -> dict[int, list[Any]]:
        """Ship op batches to their shards; one group commit per shard.

        Mutations are never retried: on a worker crash the batch's
        acknowledgement state is unknown, so the coordinator marks
        itself for resynchronisation and raises the typed error.  (The
        workload can safely re-submit position reports — replay of a
        half-applied report stream converges because a re-report at the
        same timestamp is a position correction, not a new entry.)
        """
        if advance_to is not None:
            for sid in range(self.n_shards):
                if self._shard_clocks[sid] < advance_to \
                        and not batches.get(sid):
                    batches.setdefault(sid, [])
        targets = sorted(batches)
        # Restart dead targets *before* moving the engine clock: a
        # restart's catch-up advance realigns the worker to the
        # pre-batch clock, and the batch's own ops (which may reference
        # times below ``advance_to``) then apply on top of it in order.
        for sid in targets:
            self._ensure(sid)
        if advance_to is not None:
            if advance_to > self._clock:
                self._plans.invalidate()
                self._clock = advance_to
            for sid in targets:
                batches[sid].append((OP_ADVANCE, (advance_to,)))
        try:
            for sid in targets:
                self._inflight[sid] = (self._next_seq[sid], batches[sid])
                self.pool.send(sid, "apply", batches[sid])
            results = {}
            for sid in targets:
                ops_results, next_seq = self.pool.collect(sid)
                del self._inflight[sid]
                self._next_seq[sid] = next_seq
                results[sid] = ops_results
                if advance_to is not None:
                    self._shard_clocks[sid] = advance_to
        except BaseException:
            self._needs_resync = True
            raise
        return results

    # -- ingestion -------------------------------------------------------------

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert an entry; ``d=None`` inserts a *current* entry."""
        self._check_open()
        self._settled()
        if not self.config.space.contains(x, y):
            raise ValueError(f"location ({x}, {y}) outside the spatial "
                             f"domain {self.config.space}")
        if s < self._clock:
            raise ValueError(f"out-of-order start timestamp {s} < current "
                             f"time {self._clock}")
        if d is not None and d < 1:
            raise ValueError(f"duration must be >= 1, got {d}")
        batches: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        dest = self._shard_id_of(x, y)
        if d is not None:
            batches[dest] = [(OP_INSERT, (oid, x, y, s, d))]
            self._dispatch(batches, advance_to=s)
            return
        # Pre-advance the mirror clock so liveness matches the shards'
        # post-advance view before the routing decision is made.
        probe_clock = max(self._clock, s)
        cur = self._cur.get(oid)
        if cur is not None and \
                cur[3] // self.config.w_max \
                < probe_clock // self.config.w_max - 1:
            del self._cur[oid]
            cur = None
        if cur is not None and cur[0] != dest:
            home, px, py, ps = cur
            if ps == s:
                batches[home] = [(OP_DELETE, (oid, px, py, ps, NONE_ARG))]
            else:
                batches[home] = [(OP_CLOSE, (oid, s))]
        batches.setdefault(dest, []).append(
            (OP_INSERT, (oid, x, y, s, NONE_ARG)))
        self._cur[oid] = (dest, x, y, s)
        self._dispatch(batches, advance_to=s)

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report of a moving object (alias of a current insert)."""
        self.insert(oid, x, y, t, None)

    def extend(self, reports: Iterable[ReportLike],
               batch_size: int = 1024) -> int:
        """Batched ingestion: one WAL group commit per shard per run."""
        self._check_open()
        self._settled()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        count = 0
        batch: list[ReportLike] = []
        for report in reports:
            batch.append(report)
            if len(batch) >= batch_size:
                count += self._extend_batch(batch)
                batch.clear()
        if batch:
            count += self._extend_batch(batch)
        return count

    def _extend_batch(self, batch: list[ReportLike]) -> int:
        clock = self._clock
        for report in batch:
            if not self.config.space.contains(report.x, report.y):
                raise ValueError(f"location ({report.x}, {report.y}) outside "
                                 f"the spatial domain {self.config.space}")
            if report.t < clock:
                raise ValueError(f"out-of-order start timestamp {report.t} "
                                 f"< current time {clock}")
            clock = report.t
        w_max = self.config.w_max
        start = 0
        for idx in range(1, len(batch) + 1):
            if idx == len(batch) \
                    or batch[idx].t // w_max != batch[start].t // w_max:
                self._ingest_run(batch[start:idx])
                start = idx
        return len(batch)

    def _ingest_run(self, run: list[ReportLike]) -> None:
        """One epoch run as per-shard op batches.

        Mirrors ``ShardedEngine._ingest_run``: objects hopping between
        shards take the decomposed cross-shard protocol (in stream
        order, *before* the advance so each op's internal clock bump is
        monotone), the rest ride one batched :data:`OP_RUN` per shard
        after the advance.
        """
        t_max = run[-1].t
        w_max = self.config.w_max
        touched: dict[int, set[int]] = {}
        for report in run:
            touched.setdefault(report.oid, set()).add(
                self._shard_id_of(report.x, report.y))
        cross_shard: set[int] = set()
        for oid, dests in touched.items():
            cur = self._live_cur(oid)
            if cur is not None:
                dests = dests | {cur[0]}
            if len(dests) > 1:
                cross_shard.add(oid)
        batches: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        per_shard: dict[int, list[ReportLike]] = {}
        for report in run:
            oid, x, y, t = report.oid, report.x, report.y, report.t
            dest = self._shard_id_of(x, y)
            if oid in cross_shard:
                cur = self._cur.get(oid)
                if cur is not None \
                        and cur[3] // w_max < t // w_max - 1:
                    cur = None
                if cur is not None and cur[0] != dest:
                    home, px, py, ps = cur
                    if ps == t:
                        batches.setdefault(home, []).append(
                            (OP_DELETE, (oid, px, py, ps, NONE_ARG)))
                    else:
                        batches.setdefault(home, []).append(
                            (OP_CLOSE, (oid, t)))
                batches.setdefault(dest, []).append(
                    (OP_INSERT, (oid, x, y, t, NONE_ARG)))
            else:
                per_shard.setdefault(dest, []).append(report)
            self._cur[oid] = (dest, x, y, t)
        runs = {sid: [(OP_RUN,
                       (t_max, *(arg for report in sub_run
                                 for arg in (report.oid, report.x,
                                             report.y, report.t))))]
                for sid, sub_run in per_shard.items()}
        for sid, ops in runs.items():
            batches.setdefault(sid, []).extend(ops)
        self._dispatch(batches, advance_to=t_max)

    def close_object(self, oid: int, t: int) -> bool:
        """Finalise an object's current entry at end time ``t``."""
        self._check_open()
        self._settled()
        if t < self._clock:
            raise ValueError(f"clock cannot move backwards "
                             f"({t} < {self._clock})")
        probe_clock = max(self._clock, t)
        cur = self._cur.get(oid)
        if cur is not None and \
                cur[3] // self.config.w_max \
                < probe_clock // self.config.w_max - 1:
            del self._cur[oid]
            cur = None
        if cur is None:
            self._dispatch({}, advance_to=t)
            return False
        if t <= cur[3]:
            # Let validation fail before anything is logged, exactly as
            # the shard itself would refuse — the mirror entry stays.
            raise ValueError(f"object {oid} cannot be finalised at {t} "
                             f"<= its current start {cur[3]}")
        home = cur[0]
        del self._cur[oid]
        results = self._dispatch({home: [(OP_CLOSE, (oid, t))]},
                                 advance_to=t)
        closed: bool = results[home][0]
        return closed

    def delete(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> bool:
        """Delete one specific entry from the shard owning its cell."""
        self._check_open()
        self._settled()
        sid = self._shard_id_of(x, y)
        results = self._dispatch(
            {sid: [(OP_DELETE,
                    (oid, x, y, s, NONE_ARG if d is None else d))]})
        deleted: bool = results[sid][0]
        if deleted and d is None and self._cur.get(oid) == (sid, x, y, s):
            del self._cur[oid]
        return deleted

    def set_retention(self, oid: int, retention: int | None) -> None:
        """Per-object retention override, applied to every shard."""
        self._check_open()
        self._settled()
        if retention is not None \
                and not 1 <= retention <= self.config.window:
            raise ValueError(
                f"retention must be in [1, W={self.config.window}], "
                f"got {retention}")
        arg = NONE_ARG if retention is None else retention
        self._dispatch({sid: [(OP_RETAIN, (oid, arg))]
                        for sid in range(self.n_shards)})

    def retention_of(self, oid: int) -> int:
        """The object's retention time (defaults to the window size)."""
        self._check_open()
        self._ensure(0)
        result: int = self.pool.request(0, "query", ("retention_of", (oid,)))
        return result

    def forget_object(self, oid: int) -> int:
        """Delete every queriable entry of one object across all shards."""
        self._check_open()
        self._settled()
        results = self._dispatch({sid: [(OP_FORGET, (oid,))]
                                  for sid in range(self.n_shards)})
        self._cur.pop(oid, None)
        return sum(results[sid][0] for sid in results)

    def advance_time(self, now: int) -> None:
        """Advance every shard's clock in lockstep (WAL-logged)."""
        self._check_open()
        self._settled()
        if now < self._clock:
            raise ValueError(f"clock cannot move backwards "
                             f"({now} < {self._clock})")
        if now == self._clock \
                and all(clock == now for clock in self._shard_clocks):
            return
        self._dispatch({}, advance_to=now)

    # -- properties ------------------------------------------------------------

    @property
    def now(self) -> int:
        return self._clock

    def __len__(self) -> int:
        self._check_open()
        total = 0
        for sid in range(self.n_shards):
            self._ensure(sid)
            total += self.pool.request(sid, "len")
        return total

    @property
    def stats(self) -> IOStats:
        """Aggregate IO counters across every worker (a fresh snapshot)."""
        self._check_open()
        total = IOStats()
        for sid in range(self.n_shards):
            self._ensure(sid)
            snap = self.pool.request(sid, "stats")
            for name in vars(snap):
                setattr(total, name,
                        getattr(total, name) + getattr(snap, name))
        return total

    def node_count(self) -> int:
        self._check_open()
        total = 0
        for sid in range(self.n_shards):
            self._ensure(sid)
            total += self.pool.request(sid, "query", ("node_count", ()))
        return total

    def current_objects(self) -> dict[int, tuple[int, int, int]]:
        """Merged current-entry table: oid -> (x, y, s)."""
        self._check_open()
        merged: dict[int, tuple[int, int, int]] = {}
        for sid in range(self.n_shards):
            self._ensure(sid)
            state = self.pool.request(sid, "resync")
            merged.update(state["current"])
        return merged

    def scan(self) -> Iterator[Entry]:
        """Yield every physically stored entry (diagnostics/tests only)."""
        self._check_open()
        for sid in range(self.n_shards):
            self._ensure(sid)
            yield from self.pool.request(sid, "scan")

    def check_integrity(self) -> None:
        """Per-shard invariants plus clock agreement across workers."""
        self._check_open()
        for sid in range(self.n_shards):
            self._ensure(sid)
            self.pool.request(sid, "query", ("check_integrity", ()))
        clocks = {self.pool.request(sid, "resync")["now"]
                  for sid in range(self.n_shards)}
        if clocks != {self._clock}:
            raise AssertionError(
                f"worker clocks {sorted(clocks)} disagree with the "
                f"engine clock {self._clock}")

    # -- queries ---------------------------------------------------------------

    def _plan_for(self, t_lo: int, t_hi: int, window: int | None,
                  stats: QueryStats) -> QueryPlan | None:
        entry = self._plans.lookup(t_lo, t_hi, window, self._clock)
        if entry is not None:
            stats.plan_cache_hits += 1
            return entry.plan
        columns = classify_interval(self.config, self._clock, t_lo, t_hi,
                                    window)
        if not columns:
            return None
        plan = build_query_plan(self.config, self._clock, columns, t_lo,
                                t_hi, window)
        self._plans.store(plan, t_lo, t_hi, window)
        return plan

    def _fan_out_query(self, shard_ids: list[int], method: str,
                       args: tuple[Any, ...]
                       ) -> tuple[list[tuple[int, Any]],
                                  list[ShardFailure]]:
        """Scatter one read-only method over the workers, resiliently.

        Round one pipelines the requests over every reachable worker;
        shards whose worker crashed mid-round are retried serially
        under the engine's retry policy (each retry restarts the worker
        and replays its WAL first).  Shards that cannot come back —
        open breaker, terminal recovery failure, retries exhausted —
        become typed :class:`ShardFailure` records.
        """
        self._settled()
        successes: list[tuple[int, Any]] = []
        failures: list[ShardFailure] = []
        retriable: list[tuple[int, BaseException]] = []
        sent: list[int] = []
        for sid in shard_ids:
            try:
                self._ensure(sid)
                self.pool.send(sid, "query", (method, args))
                sent.append(sid)
            except WorkerCrashError as exc:
                retriable.append((sid, exc))
            except _SHARD_FAILURE_ERRORS as exc:
                failures.append(ShardFailure(sid, self.shard_path(sid), exc))
        for sid in sent:
            try:
                successes.append((sid, self.pool.collect(sid)))
            except WorkerCrashError as exc:
                retriable.append((sid, exc))
            except _SHARD_FAILURE_ERRORS as exc:
                failures.append(ShardFailure(sid, self.shard_path(sid), exc))
        policy = self._retry_policy
        for sid, first_error in retriable:
            def attempt(sid: int = sid) -> Any:
                self._ensure(sid)
                return self.pool.request(sid, "query", (method, args))

            try:
                retry_policy = dataclasses.replace(
                    policy, retryable=tuple(policy.retryable)
                    + (WorkerCrashError,))
                successes.append((sid, retry_policy.call(attempt)))
            except _SHARD_FAILURE_ERRORS as exc:
                exc.__context__ = first_error
                failures.append(ShardFailure(sid, self.shard_path(sid), exc))
        successes.sort(key=lambda item: item[0])
        return successes, failures

    def _raise_shard_failure(self, failures: list[ShardFailure]) -> None:
        failure = failures[0]
        raise ShardQueryError(failure.shard_id, failure.path,
                              failure.error) from failure.error

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None, *,
                        strict: bool = True) -> QueryResult:
        return self.query_interval(area, t, t, window, strict=strict)

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None, *,
                       strict: bool = True) -> QueryResult:
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)
        merged = QueryResult() if strict else PartialResult()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return merged
        plan = self._plan_for(t_lo, t_hi, window, merged.stats)
        if plan is None:
            return merged
        successes, failures = self._fan_out_query(
            shard_ids, "_query_area_planned", (area, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, result in successes:
            merged.merge(result)
        if failures:
            assert isinstance(merged, PartialResult)
            merged.failures.extend(failures)
            merged.stats.degraded = True
        return merged

    def query_interval_many(self, areas: Iterable[Rect], t_lo: int,
                            t_hi: int, window: int | None = None, *,
                            strict: bool = True) -> MultiQueryResult:
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)
        areas = list(areas)
        results: list[QueryResult] = [
            QueryResult() if strict else PartialResult() for _ in areas]
        batch = MultiQueryResult(results=results)
        if not areas:
            return batch
        rect_shards = [self._shards_for_area(area) for area in areas]
        shard_ids = sorted({sid for sids in rect_shards for sid in sids})
        if not shard_ids:
            return batch
        plan = self._plan_for(t_lo, t_hi, window, batch.stats)
        if plan is None:
            return batch
        successes, failures = self._fan_out_query(
            shard_ids, "_query_area_planned_many", (areas, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, shard_batch in successes:
            for result, shard_result in zip(results, shard_batch.results,
                                            strict=True):
                result.merge(shard_result)
            batch.stats.merge(shard_batch.stats)
        if failures:
            for idx, sids in enumerate(rect_shards):
                overlapping = [failure for failure in failures
                               if failure.shard_id in sids]
                if not overlapping:
                    continue
                result = results[idx]
                assert isinstance(result, PartialResult)
                result.failures.extend(overlapping)
                result.stats.degraded = True
            batch.stats.degraded = True
        return batch

    def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None, *,
                       strict: bool = True) -> tuple[int, QueryStats]:
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)
        total = 0
        stats = QueryStats()
        shard_ids = self._shards_for_area(area)
        if not shard_ids:
            return total, stats
        plan = self._plan_for(t_lo, t_hi, window, stats)
        if plan is None:
            return total, stats
        successes, failures = self._fan_out_query(
            shard_ids, "_count_area_planned", (area, plan))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, (count, shard_stats) in successes:
            total += count
            stats.merge(shard_stats)
        if failures:
            stats.degraded = True
        return total, stats

    def query_knn(self, x: int, y: int, k: int, t_lo: int,
                  t_hi: int | None = None,
                  window: int | None = None, *,
                  strict: bool = True) -> QueryResult:
        self._check_open()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self.config.space.contains(x, y):
            raise ValueError(f"query point ({x}, {y}) outside the domain")
        if t_hi is not None and t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        self.config.queriable_period(self._clock, window)
        merged = QueryResult() if strict else PartialResult()
        candidates: list[tuple[tuple[int, int, int], Entry]] = []
        shard_ids = list(range(self.n_shards))
        successes, failures = self._fan_out_query(
            shard_ids, "query_knn", (x, y, k, t_lo, t_hi, window))
        if failures and strict:
            self._raise_shard_failure(failures)
        for _, result in successes:
            merged.stats.merge(result.stats)
            for entry in result.entries:
                dist2 = (entry.x - x) ** 2 + (entry.y - y) ** 2
                candidates.append(((dist2, entry.oid, entry.s), entry))
        candidates.sort(key=lambda item: item[0])
        merged.entries.extend(entry for _, entry in candidates[:k])
        if failures:
            assert isinstance(merged, PartialResult)
            merged.failures.extend(failures)
            merged.stats.degraded = True
        return merged

    def density_grid(self, area: Rect, t: int,
                     window: int | None = None) -> dict[tuple[int, int],
                                                        int]:
        self._check_open()
        result = self.query_timeslice(area, t, window)
        density: dict[tuple[int, int], set[int]] = {}
        for entry in result:
            cell = self.grid.cell_of(entry.x, entry.y)
            density.setdefault(cell, set()).add(entry.oid)
        counts = {cell: len(oids) for cell, oids in density.items()}
        for cell_overlap in self.grid.overlapping_cells(area):
            counts.setdefault((cell_overlap.cx, cell_overlap.cy), 0)
        return counts

    def object_history(self, oid: int, t_lo: int | None = None,
                       t_hi: int | None = None,
                       window: int | None = None) -> list[Entry]:
        self._check_open()
        q_lo, q_hi = self.config.queriable_period(self._clock, window)
        t_lo = q_lo if t_lo is None else t_lo
        t_hi = q_hi if t_hi is None else t_hi
        result = self.query_interval(self.config.space, t_lo, t_hi, window)
        return sorted((e for e in result if e.oid == oid),
                      key=lambda e: e.s)

    # -- persistence -----------------------------------------------------------

    def save(self) -> None:
        """Two-phase epoch commit across the worker pool.

        Same marker protocol as ``ShardedEngine.save`` with two
        additions: the shard commits run *inside* the workers, and a
        per-shard **checkpoint** (base refresh + WAL reset to the new
        epoch) follows the manifest flip.  Any failure up to and
        including the flip kills every worker and resolves the marker
        exactly as ``open()`` would — a worker must never keep
        acknowledging writes into a WAL of a superseded epoch.
        """
        self._check_open()
        self._settled()
        # Lockstep clocks first so the committed shards agree (and the
        # directory stays openable by ShardedEngine).
        self.advance_time(self._clock)
        for sid in range(self.n_shards):
            self._ensure(sid)
        next_epoch = self._epoch + 1
        try:
            expected = []
            for sid in range(self.n_shards):
                generation, marked = self.pool.request(sid, "gen_info")
                expected.append(generation + (1 if marked else 2))
            write_json_atomic(
                self._fops, self._dir, self._prepare_path(),
                {"format": _MANIFEST_FORMAT, "epoch": next_epoch,
                 "n_shards": self.n_shards, "expected": expected})
            gens = []
            for sid in range(self.n_shards):
                gens.append(self.pool.request(sid, "save"))
            write_json_atomic(
                self._fops, self._dir, self._manifest_path(),
                {"format": _MANIFEST_FORMAT, "n_shards": self.n_shards,
                 "epoch": next_epoch, "shards": gens,
                 "generation": self._generation})
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
        except BaseException:
            self.pool.kill_all()
            self._heal()
            self._needs_resync = True
            raise
        self._epoch = next_epoch
        for sid in range(self.n_shards):
            try:
                self._next_seq[sid] = self.pool.request(
                    sid, "checkpoint", next_epoch)
            except WorkerCrashError:
                # The worker died before checkpointing: its WAL is now
                # one epoch stale and will be reset on respawn; nothing
                # acknowledged is at risk (the epoch commit holds it).
                self._needs_resync = True

    def _heal(self) -> dict[str, Any]:
        """Resolve a leftover PREPARE marker (open-time and post-failure).

        Like ``ShardedEngine._recover_epoch``, with the WAL upgrade: a
        *partially* committed epoch rolls forward instead of raising
        ``EpochTornError`` — pending shards' WALs are rebased to the
        new epoch so their acknowledged tails replay over their old
        base snapshots, while committed shards' stale WALs are simply
        reset by their workers on respawn.
        """
        manifest = load_manifest(self._manifest_path())
        if manifest["n_shards"] != self.n_shards:
            raise EngineError(
                f"directory {self._dir!r} holds {manifest['n_shards']} "
                f"shards but config.n_shards is {self.n_shards}")
        self._set_generation(manifest["generation"])
        prepare = _load_prepare(self._prepare_path())
        if prepare is None:
            self._epoch = manifest["epoch"]
            return manifest
        if prepare["n_shards"] != self.n_shards:
            raise EngineError(
                f"save marker in {self._dir!r} records "
                f"{prepare['n_shards']} shards but the manifest holds "
                f"{self.n_shards}")
        epoch: int = manifest["epoch"]
        if prepare["epoch"] == epoch:
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
            self._epoch = epoch
            return manifest
        if prepare["epoch"] != epoch + 1:
            raise EngineError(
                f"save marker epoch {prepare['epoch']} is inconsistent "
                f"with manifest epoch {epoch} in {self._dir!r} "
                f"(external tampering?)")
        observed, committed, pending = probe_prepare_state(
            prepare, [self.shard_path(sid) for sid in range(self.n_shards)])
        if not committed:
            # Roll back: no shard committed; the old snapshot is intact
            # and — unlike the executor engine — every acknowledged op
            # since the last epoch still lives in the shards' WALs.
            self._fops.unlink(self._prepare_path())
            self._fops.fsync_dir(self._dir)
            self._epoch = epoch
            return manifest
        # Roll forward: rebase the pending shards' logs onto the new
        # epoch (idempotent, atomic per shard), then flip the manifest.
        for sid in pending:
            rebase_wal(self.wal_path(sid), self._fops, prepare["epoch"])
        gens = [gen if gen is not None else 0 for gen in observed]
        rolled = {"format": _MANIFEST_FORMAT, "n_shards": self.n_shards,
                  "epoch": prepare["epoch"], "shards": gens,
                  "generation": self._generation}
        write_json_atomic(self._fops, self._dir, self._manifest_path(),
                          rolled)
        self._fops.unlink(self._prepare_path())
        self._fops.fsync_dir(self._dir)
        self._epoch = prepare["epoch"]
        return rolled

    @classmethod
    def open(cls, path: str, config: SWSTConfig, *,
             retry_policy: RetryPolicy | None = None,
             breaker_factory: Callable[[], CircuitBreaker] | None
             = CircuitBreaker,
             heartbeat_timeout: float | None = None,
             file_ops: FileOps | None = None,
             fault_specs: dict[int, dict[str, Any]] | None = None
             ) -> "WorkerEngine":
        """Re-open a shard directory, recovering marker and WALs.

        Marker resolution runs first (roll back, roll forward with WAL
        rebase, or finish a lost cleanup); then one worker per shard is
        spawned, each replaying its WAL tail, and the coordinator
        resynchronises its mirror from the recovered workers.
        """
        engine = cls.__new__(cls)
        engine.config = config
        engine._dir = os.fspath(path)
        engine._init_common(retry_policy, breaker_factory,
                            heartbeat_timeout, file_ops, fault_specs)
        try:
            engine._heal()
            for shard_id in range(config.n_shards):
                engine._ensure(shard_id)
            engine._resync()
        except BaseException:
            engine._abandon()
            raise
        return engine

    # -- lifecycle -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    def close(self) -> None:
        """Stop every worker (graceful; shards abort, WALs stay).

        An unsaved engine loses nothing: every acknowledged op is in
        the WALs, and ``open()`` replays them.  Errors are aggregated
        exactly like ``ShardedEngine.close``.
        """
        if self._closed:
            return
        self._closed = True
        errors = self.pool.stop_all()
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise EngineCloseError(errors) from errors[0]

    def __enter__(self) -> "WorkerEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
