"""Exception types of the sharded engine layer.

The engine sits above the storage layer, so its failures get their own
small hierarchy rooted at :class:`EngineError`:

* :class:`ShardOpenError` — one shard of a directory failed to open
  (carries the shard id and page-file path).
* :class:`ShardQueryError` — a strict-mode query fan-out failed on one
  shard after the retry policy was exhausted; names the shard.
* :class:`CircuitOpenError` — a shard was skipped because its circuit
  breaker is open (no request was dispatched at all).
* :class:`TaskTimeoutError` — an executor task overran its per-task
  deadline.
* :class:`EpochTornError` — the two-phase epoch commit was interrupted
  in the one window the storage layer cannot undo: some shards committed
  the new epoch, some did not, so neither the pre-save nor the post-save
  snapshot exists on disk.  The error names both groups.
* :class:`EngineCloseError` — aggregate raised when *several* resources
  fail during :meth:`ShardedEngine.close`; every underlying error is
  kept (``errors`` attribute plus exception notes), none are dropped.
* :class:`EngineClosedError` — use-after-close.

:class:`ShardFailure` is not an exception: it is the typed per-shard
failure record carried by degraded (``strict=False``) query results.
"""

from __future__ import annotations

import dataclasses


class EngineError(Exception):
    """Base class for sharded-engine failures."""


class ShardOpenError(EngineError):
    """One shard of an engine directory failed to open.

    Attributes:
        shard_id: index of the failing shard in the cell->shard map.
        path: page-file path of the failing shard.
    """

    def __init__(self, shard_id: int, path: str, cause: Exception) -> None:
        super().__init__(f"shard {shard_id} ({path}) failed to open: "
                         f"{cause}")
        self.shard_id = shard_id
        self.path = path


class ShardQueryError(EngineError):
    """A strict-mode query failed on one shard (retries exhausted).

    Attributes:
        shard_id: index of the failing shard.
        path: page-file path of the failing shard.
    """

    def __init__(self, shard_id: int, path: str,
                 cause: BaseException) -> None:
        super().__init__(f"query failed on shard {shard_id} ({path}): "
                         f"{cause!r}")
        self.shard_id = shard_id
        self.path = path


class CircuitOpenError(EngineError):
    """A shard was skipped because its circuit breaker is open.

    Attributes:
        shard_id: index of the skipped shard.
    """

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"circuit breaker for shard {shard_id} is open; "
                         f"shard skipped without dispatch")
        self.shard_id = shard_id


class TaskTimeoutError(EngineError):
    """An executor task overran its per-task deadline.

    Attributes:
        item_index: position of the task in the ``map`` input (the
            engine maps this back to a shard id).
        timeout: the deadline in seconds.
    """

    def __init__(self, item_index: int, timeout: float) -> None:
        super().__init__(f"executor task {item_index} exceeded its "
                         f"{timeout}s deadline")
        self.item_index = item_index
        self.timeout = timeout


class EpochTornError(EngineError):
    """A crashed save left shards split across two manifest epochs.

    Shards that committed the new epoch overwrote pages of the old
    snapshot in place (the storage layer commits per shard, not per
    directory), and the shards that never committed lost the new data
    with the process — so neither snapshot is recoverable.  Detected
    deterministically from the PREPARE record; never silently served.

    Attributes:
        epoch: the epoch the interrupted save was committing.
        committed: shard ids that committed the new epoch.
        pending: shard ids still on the previous epoch.
    """

    def __init__(self, epoch: int, committed: list[int],
                 pending: list[int]) -> None:
        super().__init__(
            f"save of epoch {epoch} was interrupted between shard "
            f"commits: shards {committed} committed it, shards "
            f"{pending} did not; neither snapshot is whole "
            f"(restore the directory from backup)")
        self.epoch = epoch
        self.committed = committed
        self.pending = pending


class EngineCloseError(EngineError):
    """Multiple resources failed while closing the engine.

    The first failure is chained as ``__cause__``; every failure
    (including the first) is listed in ``errors`` and attached as an
    exception note, so no error is silently dropped.

    Attributes:
        errors: all close failures, in the order they occurred.
    """

    def __init__(self, errors: list[BaseException]) -> None:
        super().__init__(f"{len(errors)} resources failed to close: "
                         + "; ".join(repr(exc) for exc in errors))
        self.errors = list(errors)
        for exc in errors:
            self.add_note(f"close failure: {exc!r}")


class EngineClosedError(EngineError):
    """An operation was attempted on a closed engine."""


class ReshardError(EngineError):
    """A directory cannot be resharded in its current state.

    Raised before anything is written: the directory has never been
    saved, holds an unresolved save marker, or its write-ahead logs
    carry acknowledged records that only a checkpoint (``save()``)
    would fold into the page files — resharding from the page files
    alone would silently drop them.
    """


class ReshardInProgressError(ReshardError):
    """A second reshard (or a save) raced an in-flight online reshard.

    The serving layer runs at most one reshard at a time and parks
    ``save()`` while one is running — the reshard's own commit is the
    epoch flip, and a concurrent save would race it for the manifest.
    """


class WalError(EngineError):
    """Base class for write-ahead-log failures."""


class WalCorruptError(WalError):
    """A WAL file is unreadable beyond normal torn-tail truncation.

    A torn *tail* (short or CRC-bad final record) is expected after a
    crash and silently truncated on resume; this error is for damage
    replay cannot step over: a bad magic/header, a corrupt record in the
    *middle* of the acknowledged prefix, or a WAL claiming a future
    epoch the manifest never committed.

    Attributes:
        path: the damaged WAL file.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"write-ahead log {path} is corrupt: {reason}")
        self.path = path
        self.reason = reason


class WorkerCrashError(EngineError):
    """A warm worker process died (exit, kill, or heartbeat overrun).

    Raised by the supervisor when a request cannot be completed because
    the owning worker's process is gone or unresponsive.  Retryable for
    read-only queries (the supervisor restarts the worker and replays
    its WAL first); never retried for mutations — the caller cannot
    know whether the op was fsynced before the crash, so the engine
    reports it and lets the crash matrix's replay rules decide.

    Attributes:
        shard_id: shard whose worker died.
        detail: what the supervisor observed (exit code, deadline, ...).
    """

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"worker for shard {shard_id} crashed: {detail}")
        self.shard_id = shard_id
        self.detail = detail


class WorkerRecoveryError(EngineError):
    """A worker could not rebuild its shard from base + WAL on start.

    Terminal for the shard (restarting again cannot help): the page
    file is unrecoverable and no base snapshot exists, or the WAL is
    corrupt beyond its tail.

    Attributes:
        shard_id: the unrecoverable shard.
    """

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"worker for shard {shard_id} cannot recover: "
                         f"{detail}")
        self.shard_id = shard_id
        self.detail = detail


@dataclasses.dataclass(frozen=True)
class ShardFailure:
    """Typed record of one shard's failure during a degraded query.

    Attributes:
        shard_id: index of the failed shard.
        path: page-file path of the failed shard.
        error: the exception that exhausted the retry policy (a
            :class:`CircuitOpenError` if the shard was never dispatched,
            a :class:`TaskTimeoutError` if the task overran its
            deadline).
    """

    shard_id: int
    path: str
    error: BaseException

    def __str__(self) -> str:
        return f"shard {self.shard_id} ({self.path}): {self.error!r}"
