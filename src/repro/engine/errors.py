"""Exception types of the sharded engine layer.

The engine sits above the storage layer, so its failures get their own
small hierarchy rooted at :class:`EngineError`.  Shard-open failures are
wrapped in :class:`ShardOpenError` carrying the shard id and page-file
path, so a caller supervising a shard directory can tell *which* shard is
damaged (and knows the healthy siblings reopened cleanly before the error
was raised — shards are opened in order and closed again on failure).
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for sharded-engine failures."""


class ShardOpenError(EngineError):
    """One shard of an engine directory failed to open.

    Attributes:
        shard_id: index of the failing shard in the cell->shard map.
        path: page-file path of the failing shard.
    """

    def __init__(self, shard_id: int, path: str, cause: Exception) -> None:
        super().__init__(f"shard {shard_id} ({path}) failed to open: "
                         f"{cause}")
        self.shard_id = shard_id
        self.path = path


class EngineClosedError(EngineError):
    """An operation was attempted on a closed engine."""
