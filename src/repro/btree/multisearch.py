"""Level-wise multi-range B+ tree search (paper Section IV-B(c)).

SWST's query step (b) produces one key range per non-empty s-partition
column; the ranges are sorted and disjoint.  Searching them one by one would
re-walk the root-to-leaf path for each range.  The paper instead descends
*level by level*, carrying with each node the list of ranges that overlap
it, so that **no node is ever accessed more than once** per query.

:func:`multi_range_search` implements that algorithm on top of
:class:`repro.btree.tree.BPlusTree`.  It also works for non-disjoint ranges
(the result may then contain duplicates for overlapping parts, as the paper
notes the IO cost is unchanged and only CPU work grows).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from .node import InternalNode, LeafNode
from .tree import BPlusTree, KeyRange


def normalize_ranges(ranges: Sequence[tuple[int, int]]) -> list[KeyRange]:
    """Sort ranges and coalesce overlapping/adjacent ones.

    The SWST key-range generator already emits sorted disjoint ranges; this
    helper makes the search robust to callers that do not.
    """
    valid = sorted((lo, hi) for lo, hi in ranges if lo <= hi)
    merged: list[KeyRange] = []
    for lo, hi in valid:
        if merged and lo <= merged[-1].hi + 1:
            if hi > merged[-1].hi:
                merged[-1] = KeyRange(merged[-1].lo, hi)
        else:
            merged.append(KeyRange(lo, hi))
    return merged


def multi_range_search(tree: BPlusTree,
                       ranges: Sequence[tuple[int, int]],
                       ) -> list[tuple[int, bytes]]:
    """Search several key ranges visiting each tree node at most once.

    Args:
        tree: the B+ tree to search.
        ranges: list of closed ``(lo, hi)`` key ranges.

    Returns:
        All matching (key, value) pairs in key order.
    """
    todo = normalize_ranges(ranges)
    if not todo:
        return []
    results: list[tuple[int, bytes]] = []
    # Each level is an ordered mapping page_id -> ranges assigned to it.
    # Page ids at one level are distinct (children of distinct parents),
    # and assignments stay sorted because both nodes and ranges are sorted.
    level: list[tuple[int, list[KeyRange]]] = [(tree.root_page, todo)]
    while level:
        next_level: dict[int, list[KeyRange]] = {}
        for page_id, assigned in level:
            node = tree._read_node(page_id)
            if isinstance(node, LeafNode):
                _scan_leaf(node, assigned, results)
                continue
            _assign_children(node, assigned, next_level)
        level = list(next_level.items())
    return results


def multi_range_search_many(tree: BPlusTree,
                            groups: Sequence[Sequence[tuple[int, int]]],
                            ) -> list[tuple[int, bytes]]:
    """One level-wise descent over the *union* of several range groups.

    The multi-rectangle query path amortises a single descent across the
    key ranges of every rectangle overlapping one spatial cell: the
    groups are flattened and normalised (sorted, overlapping/adjacent
    ranges coalesced), so each tree node is still visited at most once
    and no hit is returned twice.  Use :func:`hits_in_ranges` to slice
    the shared hit list back down to one group's own ranges.
    """
    return multi_range_search(tree,
                              [r for group in groups for r in group])


def hits_in_ranges(hits: Sequence[tuple[int, bytes]],
                   keys: Sequence[int],
                   ranges: Sequence[tuple[int, int]],
                   ) -> list[tuple[int, bytes]]:
    """Subset of key-ordered ``hits`` whose key falls in ``ranges``.

    Args:
        hits: (key, value) pairs sorted by key (a
            :func:`multi_range_search` result).
        keys: the keys of ``hits`` as their own list (hoisted once by
            the caller, reused across many groups).
        ranges: closed, sorted, pairwise-disjoint key ranges.

    Each qualifying hit is returned exactly once, in key order, via two
    bisections per range — no per-hit Python loop.
    """
    out: list[tuple[int, bytes]] = []
    for lo, hi in ranges:
        start = bisect_left(keys, lo)
        stop = bisect_right(keys, hi, start)
        if stop > start:
            out.extend(hits[start:stop])
    return out


def _scan_leaf(node: LeafNode, assigned: list[KeyRange],
               results: list[tuple[int, bytes]]) -> None:
    for key_range in assigned:
        start = bisect_left(node.keys, key_range.lo)
        for idx in range(start, len(node.keys)):
            if node.keys[idx] > key_range.hi:
                break
            results.append((node.keys[idx], node.values[idx]))


def _assign_children(node: InternalNode, assigned: list[KeyRange],
                     next_level: dict[int, list[KeyRange]]) -> None:
    for key_range in assigned:
        # Children overlapping [lo, hi]: duplicates equal to a separator may
        # sit left of it, hence bisect_left for the first child.
        first = bisect_left(node.keys, key_range.lo)
        last = bisect_right(node.keys, key_range.hi)
        for child_idx in range(first, last + 1):
            child = node.children[child_idx]
            bucket = next_level.setdefault(child, [])
            if not bucket or bucket[-1] != key_range:
                bucket.append(key_range)
