"""Disk-based B+ tree: SWST's per-spatial-cell temporal index substrate."""

from .multisearch import (hits_in_ranges, multi_range_search,
                          multi_range_search_many, normalize_ranges)
from .node import (InternalNode, KEY_BYTES, KEY_MAX, LeafNode,
                   NodeFormatError, internal_capacity, leaf_capacity)
from .tree import BPlusTree, KeyRange

__all__ = [
    "BPlusTree",
    "InternalNode",
    "KEY_BYTES",
    "KEY_MAX",
    "KeyRange",
    "LeafNode",
    "NodeFormatError",
    "hits_in_ranges",
    "internal_capacity",
    "leaf_capacity",
    "multi_range_search",
    "multi_range_search_many",
    "normalize_ranges",
]
