"""Disk-based B+ tree: SWST's per-spatial-cell temporal index substrate."""

from .multisearch import multi_range_search, normalize_ranges
from .node import (InternalNode, KEY_BYTES, KEY_MAX, LeafNode,
                   NodeFormatError, internal_capacity, leaf_capacity)
from .tree import BPlusTree, KeyRange

__all__ = [
    "BPlusTree",
    "InternalNode",
    "KEY_BYTES",
    "KEY_MAX",
    "KeyRange",
    "LeafNode",
    "NodeFormatError",
    "internal_capacity",
    "leaf_capacity",
    "multi_range_search",
    "normalize_ranges",
]
