"""Disk-resident B+ tree with duplicate keys and full delete support.

This is the second-layer structure of SWST: each spatial cell owns two of
these trees, keyed by the linearised (s-partition, d-partition, Z-value)
composite.  Unlike MV3R, arbitrary entries can be deleted (the paper's
current-entry protocol deletes and re-inserts an entry on every position
report), so the tree implements standard borrow/merge rebalancing.

All page IO goes through a :class:`repro.storage.BufferPool`, where node
accesses are counted.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterator

from ..storage.buffer import BufferPool
from .node import (InternalNode, KEY_MAX, LEAF_TYPE, LeafNode,
                   internal_capacity, leaf_capacity, node_type_of)


class KeyRange(tuple):
    """Closed key range ``(lo, hi)``; a plain tuple subtype for clarity."""

    def __new__(cls, lo: int, hi: int) -> "KeyRange":
        if lo > hi:
            raise ValueError(f"empty key range [{lo}, {hi}]")
        return super().__new__(cls, (lo, hi))

    @property
    def lo(self) -> int:
        return self[0]

    @property
    def hi(self) -> int:
        return self[1]


class BPlusTree:
    """A B+ tree over a buffer pool.

    Args:
        pool: buffer pool providing page IO.
        value_size: fixed byte width of every value payload.
        root_page: root page id of an existing tree, or ``None`` to create a
            fresh empty tree.

    Keys are unsigned integers below ``2**128``; duplicate keys are allowed
    and duplicates of a full ``(key, value)`` pair are also allowed (each
    ``delete`` removes one occurrence).
    """

    def __init__(self, pool: BufferPool, value_size: int,
                 root_page: int | None = None) -> None:
        if value_size <= 0:
            raise ValueError(f"value_size must be positive, got {value_size}")
        self.pool = pool
        self.value_size = value_size
        self.leaf_cap = leaf_capacity(pool.page_size, value_size)
        self.internal_cap = internal_capacity(pool.page_size)
        if self.leaf_cap < 2 or self.internal_cap < 3:
            raise ValueError("page size too small for this value size")
        if root_page is None:
            self.root_page = pool.allocate()
            self._write_leaf(self.root_page, LeafNode())
        else:
            self.root_page = root_page

    # -- page helpers --------------------------------------------------------
    #
    # All node IO goes through the buffer pool's decoded-node cache: a
    # fetch returns the *shared* cached object and a write publishes it
    # (serialisation is deferred to eviction/flush).  Tree code therefore
    # always follows an in-place mutation of a node with a ``_write_*``
    # call before the next pool access.

    def _decode_node(self, raw: bytes) -> LeafNode | InternalNode:
        if node_type_of(raw) == LEAF_TYPE:
            return LeafNode.from_bytes(raw, self.value_size)
        return InternalNode.from_bytes(raw)

    def _encode_node(self, node: LeafNode | InternalNode) -> bytes:
        if isinstance(node, LeafNode):
            return node.to_bytes(self.pool.page_size, self.value_size)
        return node.to_bytes(self.pool.page_size)

    def _read_node(self, page_id: int) -> LeafNode | InternalNode:
        return self.pool.fetch_node(page_id, self._decode_node)

    def _write_leaf(self, page_id: int, node: LeafNode) -> None:
        self.pool.write_node(page_id, node, self._encode_node)

    def _write_internal(self, page_id: int, node: InternalNode) -> None:
        self.pool.write_node(page_id, node, self._encode_node)

    def _write_node(self, page_id: int,
                    node: LeafNode | InternalNode) -> None:
        self.pool.write_node(page_id, node, self._encode_node)

    # -- insertion -----------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert one (key, value) pair; duplicates allowed."""
        if not 0 <= key <= KEY_MAX:
            raise ValueError(f"key {key} out of range")
        if len(value) != self.value_size:
            raise ValueError(f"value must be {self.value_size} bytes, "
                             f"got {len(value)}")
        split = self._insert(self.root_page, key, value)
        if split is not None:
            sep_key, right_page = split
            new_root = InternalNode(keys=[sep_key],
                                    children=[self.root_page, right_page])
            root_page = self.pool.allocate()
            self._write_internal(root_page, new_root)
            self.root_page = root_page

    def _insert(self, page_id: int, key: int,
                value: bytes) -> tuple[int, int] | None:
        """Recursive insert; returns (separator, new right page) on split."""
        node = self._read_node(page_id)
        if isinstance(node, LeafNode):
            idx = bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) <= self.leaf_cap:
                self._write_leaf(page_id, node)
                return None
            return self._split_leaf(page_id, node)
        child_idx = bisect_right(node.keys, key)
        split = self._insert(node.children[child_idx], key, value)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(child_idx, sep_key)
        node.children.insert(child_idx + 1, right_page)
        if len(node.keys) <= self.internal_cap:
            self._write_internal(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int,
                    node: LeafNode) -> tuple[int, int]:
        mid = len(node.keys) // 2
        right = LeafNode(keys=node.keys[mid:], values=node.values[mid:],
                         next_leaf=node.next_leaf)
        right_page = self.pool.allocate()
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right_page
        self._write_leaf(right_page, right)
        self._write_leaf(page_id, node)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int,
                        node: InternalNode) -> tuple[int, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = InternalNode(keys=node.keys[mid + 1:],
                             children=node.children[mid + 1:])
        right_page = self.pool.allocate()
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._write_internal(right_page, right)
        self._write_internal(page_id, node)
        return sep_key, right_page

    # -- search --------------------------------------------------------------

    def range_search(self, lo: int, hi: int) -> list[tuple[int, bytes]]:
        """Return all (key, value) pairs with ``lo <= key <= hi`` in order."""
        return list(self.iter_range(lo, hi))

    def iter_range(self, lo: int, hi: int) -> Iterator[tuple[int, bytes]]:
        """Yield (key, value) pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return
        page_id = self.root_page
        node = self._read_node(page_id)
        while isinstance(node, InternalNode):
            page_id = node.children[bisect_left(node.keys, lo)]
            node = self._read_node(page_id)
        while True:
            start = bisect_left(node.keys, lo)
            for idx in range(start, len(node.keys)):
                if node.keys[idx] > hi:
                    return
                yield node.keys[idx], node.values[idx]
            if node.keys and node.keys[-1] > hi:
                return
            if not node.next_leaf:
                return
            node = self._read_node(node.next_leaf)
            if isinstance(node, InternalNode):  # pragma: no cover - corruption
                raise RuntimeError("leaf chain points at an internal node")

    def search(self, key: int) -> list[bytes]:
        """Return the values of every entry with exactly ``key``."""
        return [value for _, value in self.iter_range(key, key)]

    def items(self) -> Iterator[tuple[int, bytes]]:
        """Yield every (key, value) pair in key order."""
        return self.iter_range(0, KEY_MAX)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- deletion ------------------------------------------------------------

    def delete(self, key: int,
               match: bytes | Callable[[bytes], bool] | None = None) -> bool:
        """Delete one entry with ``key`` whose value matches.

        Args:
            key: the key to delete.
            match: exact value bytes, a predicate over the value, or ``None``
                to delete any one entry with the key.

        Returns:
            True if an entry was found and deleted.
        """
        if isinstance(match, (bytes, bytearray)):
            target = bytes(match)
            predicate = lambda value: value == target  # noqa: E731
        else:
            predicate = (match if match is not None
                         else (lambda value: True))
        deleted, _ = self._delete(self.root_page, key, predicate)
        if deleted:
            root = self._read_node(self.root_page)
            if isinstance(root, InternalNode) and not root.keys:
                old_root = self.root_page
                self.root_page = root.children[0]
                self.pool.free(old_root)
        return deleted

    def _min_leaf_fill(self) -> int:
        return self.leaf_cap // 2

    def _min_internal_fill(self) -> int:
        return self.internal_cap // 2

    def _delete(self, page_id: int, key: int,
                predicate: Callable[[bytes], bool]) -> tuple[bool, bool]:
        """Recursive delete.

        Returns:
            (deleted, underflow) — whether an entry was removed from this
            subtree and whether this node is now under-full.
        """
        node = self._read_node(page_id)
        if isinstance(node, LeafNode):
            idx = bisect_left(node.keys, key)
            while idx < len(node.keys) and node.keys[idx] == key:
                if predicate(node.values[idx]):
                    del node.keys[idx]
                    del node.values[idx]
                    self._write_leaf(page_id, node)
                    return True, len(node.keys) < self._min_leaf_fill()
                idx += 1
            return False, False
        # Duplicates equal to a separator may live in the child left of it,
        # so try every child whose span can contain the key.
        first = bisect_left(node.keys, key)
        last = bisect_right(node.keys, key)
        for child_idx in range(first, last + 1):
            child_page = node.children[child_idx]
            deleted, underflow = self._delete(child_page, key, predicate)
            if not deleted:
                continue
            if underflow:
                self._fix_underflow(page_id, node, child_idx)
                node = self._read_node(page_id)
                assert isinstance(node, InternalNode)
            return True, len(node.keys) < self._min_internal_fill()
        return False, False

    def _fix_underflow(self, page_id: int, node: InternalNode,
                       child_idx: int) -> None:
        """Restore the fill invariant of ``node.children[child_idx]``."""
        child_page = node.children[child_idx]
        child = self._read_node(child_page)
        if child_idx > 0:
            left_page = node.children[child_idx - 1]
            left = self._read_node(left_page)
            if self._can_lend(left):
                self._borrow_from_left(node, child_idx, left_page, left,
                                       child_page, child)
                self._write_internal(page_id, node)
                return
        if child_idx < len(node.children) - 1:
            right_page = node.children[child_idx + 1]
            right = self._read_node(right_page)
            if self._can_lend(right):
                self._borrow_from_right(node, child_idx, child_page, child,
                                        right_page, right)
                self._write_internal(page_id, node)
                return
        # No sibling can lend: merge with a neighbour.
        if child_idx > 0:
            self._merge(node, child_idx - 1)
        else:
            self._merge(node, child_idx)
        self._write_internal(page_id, node)

    def _can_lend(self, sibling: LeafNode | InternalNode) -> bool:
        if isinstance(sibling, LeafNode):
            return len(sibling.keys) > self._min_leaf_fill()
        return len(sibling.keys) > self._min_internal_fill()

    def _borrow_from_left(self, parent: InternalNode, child_idx: int,
                          left_page: int, left: LeafNode | InternalNode,
                          child_page: int,
                          child: LeafNode | InternalNode) -> None:
        if isinstance(child, LeafNode):
            assert isinstance(left, LeafNode)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[child_idx - 1] = child.keys[0]
        else:
            assert isinstance(left, InternalNode)
            child.keys.insert(0, parent.keys[child_idx - 1])
            child.children.insert(0, left.children.pop())
            parent.keys[child_idx - 1] = left.keys.pop()
        self._write_node(left_page, left)
        self._write_node(child_page, child)

    def _borrow_from_right(self, parent: InternalNode, child_idx: int,
                           child_page: int, child: LeafNode | InternalNode,
                           right_page: int,
                           right: LeafNode | InternalNode) -> None:
        if isinstance(child, LeafNode):
            assert isinstance(right, LeafNode)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[child_idx] = right.keys[0]
        else:
            assert isinstance(right, InternalNode)
            child.keys.append(parent.keys[child_idx])
            child.children.append(right.children.pop(0))
            parent.keys[child_idx] = right.keys.pop(0)
        self._write_node(child_page, child)
        self._write_node(right_page, right)

    def _merge(self, parent: InternalNode, left_idx: int) -> None:
        """Merge ``children[left_idx + 1]`` into ``children[left_idx]``."""
        left_page = parent.children[left_idx]
        right_page = parent.children[left_idx + 1]
        left = self._read_node(left_page)
        right = self._read_node(right_page)
        if isinstance(left, LeafNode):
            assert isinstance(right, LeafNode)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            assert isinstance(right, InternalNode)
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_idx]
        del parent.children[left_idx + 1]
        self._write_node(left_page, left)
        self.pool.free(right_page)

    # -- bulk loading ----------------------------------------------------------

    def bulk_load(self, items: list[tuple[int, bytes]],
                  fill: float = 0.9) -> None:
        """Build the tree bottom-up from key-sorted (key, value) pairs.

        Much cheaper than repeated :meth:`insert` for a known dataset (the
        construction mode PIST assumes).  The tree must be empty; leaves
        are packed to ``fill`` of capacity so later inserts do not split
        immediately.
        """
        if not 0.1 <= fill <= 1.0:
            raise ValueError(f"fill must be in [0.1, 1.0], got {fill}")
        if self._read_node(self.root_page) != LeafNode():
            raise ValueError("bulk_load requires an empty tree")
        if any(items[i][0] > items[i + 1][0]
               for i in range(len(items) - 1)):
            raise ValueError("bulk_load input must be sorted by key")
        if not items:
            return
        # Build the leaf level, reusing the existing root page first.  The
        # fill factor is clamped so packed nodes never violate the
        # minimum-fill invariant later deletes rely on.
        per_leaf = max(2, self._min_leaf_fill(),
                       int(self.leaf_cap * fill))
        leaf_pages: list[tuple[int, int]] = []  # (first_key, page)
        chunks = [items[i:i + per_leaf]
                  for i in range(0, len(items), per_leaf)]
        # Avoid an under-filled final leaf: merge the last two chunks into
        # one full leaf if they fit, else split them evenly (each half is
        # then >= cap/2 >= the minimum fill).
        if len(chunks) >= 2 and len(chunks[-1]) < self._min_leaf_fill():
            merged = chunks[-2] + chunks[-1]
            if len(merged) <= self.leaf_cap:
                chunks[-2:] = [merged]
            else:
                half = len(merged) // 2
                chunks[-2], chunks[-1] = merged[:half], merged[half:]
        pages = [self.root_page] + [self.pool.allocate()
                                    for _ in chunks[1:]]
        for idx, chunk in enumerate(chunks):
            node = LeafNode(keys=[k for k, _ in chunk],
                            values=[v for _, v in chunk],
                            next_leaf=pages[idx + 1]
                            if idx + 1 < len(pages) else 0)
            self._write_leaf(pages[idx], node)
            leaf_pages.append((chunk[0][0], pages[idx]))
        # Build internal levels until one node remains.
        level = leaf_pages
        per_node = max(2, self._min_internal_fill() + 1,
                       int(self.internal_cap * fill))
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            groups = [level[i:i + per_node]
                      for i in range(0, len(level), per_node)]
            if len(groups) >= 2 and \
                    len(groups[-1]) - 1 < self._min_internal_fill():
                merged = groups[-2] + groups[-1]
                if len(merged) - 1 <= self.internal_cap:
                    groups[-2:] = [merged]
                else:
                    half = len(merged) // 2
                    groups[-2], groups[-1] = merged[:half], merged[half:]
            for group in groups:
                node = InternalNode(keys=[key for key, _ in group[1:]],
                                    children=[page for _, page in group])
                page = self.pool.allocate()
                self._write_internal(page, node)
                next_level.append((group[0][0], page))
            level = next_level
        if level[0][1] != self.root_page:
            self.root_page = level[0][1]

    # -- maintenance ---------------------------------------------------------

    def drop(self) -> int:
        """Free every page of the tree; returns the number of freed pages.

        This is SWST's O(pages) wholesale deletion of an expired window —
        no per-entry work is done.
        """
        freed = self._drop_subtree(self.root_page)
        self.root_page = self.pool.allocate()
        self._write_leaf(self.root_page, LeafNode())
        return freed

    def _drop_subtree(self, page_id: int) -> int:
        node = self._read_node(page_id)
        freed = 1
        if isinstance(node, InternalNode):
            for child in node.children:
                freed += self._drop_subtree(child)
        self.pool.free(page_id)
        return freed

    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        levels = 1
        node = self._read_node(self.root_page)
        while isinstance(node, InternalNode):
            levels += 1
            node = self._read_node(node.children[0])
        return levels

    def node_count(self) -> int:
        """Total pages used by the tree."""
        return self._count_subtree(self.root_page)

    def _count_subtree(self, page_id: int) -> int:
        node = self._read_node(page_id)
        if isinstance(node, LeafNode):
            return 1
        return 1 + sum(self._count_subtree(child) for child in node.children)

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated.

        Used by tests; checks key ordering, fill factors, leaf chain
        consistency and child/separator coherence.
        """
        leaves: list[int] = []
        self._check_subtree(self.root_page, 0, KEY_MAX, is_root=True,
                            leaves=leaves)
        # Leaf chain must visit exactly the leaves in key order.
        chained = []
        page_id = leaves[0] if leaves else 0
        while page_id:
            chained.append(page_id)
            node = self._read_node(page_id)
            assert isinstance(node, LeafNode)
            page_id = node.next_leaf
        assert chained == leaves, "leaf chain does not match key order"

    def _check_subtree(self, page_id: int, lo: int, hi: int, is_root: bool,
                       leaves: list[int]) -> None:
        node = self._read_node(page_id)
        if isinstance(node, LeafNode):
            assert node.keys == sorted(node.keys), "unsorted leaf"
            for key in node.keys:
                assert lo <= key <= hi, "leaf key outside separator bounds"
            if not is_root:
                assert len(node.keys) >= self._min_leaf_fill(), \
                    "under-full leaf"
            leaves.append(page_id)
            return
        assert node.keys == sorted(node.keys), "unsorted internal node"
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.keys) >= self._min_internal_fill(), \
                "under-full internal node"
        else:
            assert len(node.keys) >= 1 or leaves == [], \
                "internal root must have at least one key"
        bounds = [lo] + node.keys + [hi]
        for idx, child in enumerate(node.children):
            # Duplicate runs may leave keys equal to the left separator in
            # the child, hence the closed lower bound.
            self._check_subtree(child, bounds[idx], bounds[idx + 1],
                                is_root=False, leaves=leaves)
