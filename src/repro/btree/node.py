"""On-page serialisation of B+ tree nodes.

Page layout (little-endian):

* Leaf page::

      u8 type(=1)  u16 nkeys  u64 next_leaf
      nkeys × ( key[KEY_BYTES] , value[value_size] )

* Internal page::

      u8 type(=2)  u16 nkeys  u64 child_0
      nkeys × ( key[KEY_BYTES] , u64 child_{i+1} )

Keys are unsigned integers stored big-endian in ``KEY_BYTES`` bytes, so the
byte order matches numeric order.  SWST keys (s-partition ⊕ d-partition ⊕
Z-value) fit comfortably in 128 bits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

KEY_BYTES = 16
KEY_MAX = (1 << (8 * KEY_BYTES)) - 1

LEAF_TYPE = 1
INTERNAL_TYPE = 2

_LEAF_HEADER = struct.Struct("<BHQ")      # type, nkeys, next_leaf
_INTERNAL_HEADER = struct.Struct("<BHQ")  # type, nkeys, child_0
_CHILD = struct.Struct("<Q")


class NodeFormatError(ValueError):
    """A page failed to parse as a B+ tree node."""


def leaf_capacity(page_size: int, value_size: int) -> int:
    """Maximum number of (key, value) slots in a leaf page."""
    usable = page_size - _LEAF_HEADER.size
    return usable // (KEY_BYTES + value_size)


def internal_capacity(page_size: int) -> int:
    """Maximum number of separator keys in an internal page."""
    usable = page_size - _INTERNAL_HEADER.size
    return usable // (KEY_BYTES + _CHILD.size)


def _encode_key(key: int) -> bytes:
    return key.to_bytes(KEY_BYTES, "big")


def _decode_key(raw: bytes | memoryview) -> int:
    return int.from_bytes(raw, "big")


@dataclass
class LeafNode:
    """Deserialised leaf node: parallel ``keys`` / ``values`` lists."""

    keys: list[int] = field(default_factory=list)
    values: list[bytes] = field(default_factory=list)
    next_leaf: int = 0

    def to_bytes(self, page_size: int, value_size: int) -> bytes:
        if len(self.keys) != len(self.values):
            raise NodeFormatError("keys/values length mismatch")
        parts = [_LEAF_HEADER.pack(LEAF_TYPE, len(self.keys), self.next_leaf)]
        for key, value in zip(self.keys, self.values, strict=True):
            if len(value) != value_size:
                raise NodeFormatError(
                    f"value of {len(value)} bytes != value_size {value_size}")
            parts.append(_encode_key(key))
            parts.append(value)
        raw = b"".join(parts)
        if len(raw) > page_size:
            raise NodeFormatError(
                f"leaf with {len(self.keys)} entries overflows page")
        return raw.ljust(page_size, b"\x00")

    @classmethod
    def from_bytes(cls, raw: bytes, value_size: int) -> "LeafNode":
        node_type, nkeys, next_leaf = _LEAF_HEADER.unpack_from(raw)
        if node_type != LEAF_TYPE:
            raise NodeFormatError(f"expected leaf page, got type {node_type}")
        keys: list[int] = []
        values: list[bytes] = []
        offset = _LEAF_HEADER.size
        step = KEY_BYTES + value_size
        view = memoryview(raw)
        for _ in range(nkeys):
            keys.append(_decode_key(view[offset:offset + KEY_BYTES]))
            values.append(bytes(view[offset + KEY_BYTES:offset + step]))
            offset += step
        return cls(keys=keys, values=values, next_leaf=next_leaf)


@dataclass
class InternalNode:
    """Deserialised internal node: ``len(children) == len(keys) + 1``.

    ``children[i]`` covers keys in ``[keys[i-1], keys[i])`` with the usual
    open ends, except that duplicate keys equal to a separator may also live
    in the child left of it (a consequence of splitting leaves that contain
    runs of equal keys); readers must descend with ``bisect_left``.
    """

    keys: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    def to_bytes(self, page_size: int) -> bytes:
        if len(self.children) != len(self.keys) + 1:
            raise NodeFormatError("children must be len(keys) + 1")
        parts = [_INTERNAL_HEADER.pack(INTERNAL_TYPE, len(self.keys),
                                       self.children[0])]
        for key, child in zip(self.keys, self.children[1:], strict=True):
            parts.append(_encode_key(key))
            parts.append(_CHILD.pack(child))
        raw = b"".join(parts)
        if len(raw) > page_size:
            raise NodeFormatError(
                f"internal node with {len(self.keys)} keys overflows page")
        return raw.ljust(page_size, b"\x00")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "InternalNode":
        node_type, nkeys, child0 = _INTERNAL_HEADER.unpack_from(raw)
        if node_type != INTERNAL_TYPE:
            raise NodeFormatError(
                f"expected internal page, got type {node_type}")
        keys: list[int] = []
        children: list[int] = [child0]
        offset = _INTERNAL_HEADER.size
        step = KEY_BYTES + _CHILD.size
        view = memoryview(raw)
        for _ in range(nkeys):
            keys.append(_decode_key(view[offset:offset + KEY_BYTES]))
            (child,) = _CHILD.unpack_from(view, offset + KEY_BYTES)
            children.append(child)
            offset += step
        return cls(keys=keys, children=children)


def node_type_of(raw: bytes) -> int:
    """Peek at a page's node type byte without a full parse."""
    if not raw:
        raise NodeFormatError("empty page")
    node_type = raw[0]
    if node_type not in (LEAF_TYPE, INTERNAL_TYPE):
        raise NodeFormatError(f"unknown node type byte {node_type}")
    return node_type
