"""HR-tree baseline (Nascimento & Silva; paper Section II).

The historical R-tree keeps "a separate R-tree for each timestamp",
sharing unchanged branches between consecutive versions.  The paper cites
it as the design that *can* delete efficiently (whole old versions) but
"is not suitable for interval queries and requires very large storage
space" — both properties this implementation exists to demonstrate.

Implementation: a copy-on-write (persistent) R-tree over the shared
pager.  Every position update path-copies the root-to-leaf path, creating
a new version root; page sharing is tracked with in-memory reference
counts so :meth:`drop_versions_before` can reclaim whole expired versions
without touching shared branches.

Only *current positions* are versioned (the classic HR-tree model): an
object sits at its last reported location until its next report.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field

from ..core.records import Rect
from ..storage.buffer import BufferPool
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats

_HEADER = struct.Struct("<BH")
_LEAF_TYPE = 1
_INTERNAL_TYPE = 2
_LEAF_ENTRY = struct.Struct("<QII")            # oid, x, y
_INT_ENTRY = struct.Struct("<IIIIQ")           # rect, child


@dataclass
class _Node:
    is_leaf: bool
    entries: list[tuple] = field(default_factory=list)
    # leaf entries: (oid, x, y); internal entries: (Rect, child_page)

    def mbr(self) -> Rect:
        if self.is_leaf:
            xs = [x for _, x, _ in self.entries]
            ys = [y for _, _, y in self.entries]
            return Rect(min(xs), min(ys), max(xs), max(ys))
        rects = [rect for rect, _ in self.entries]
        return Rect(min(r.x_lo for r in rects), min(r.y_lo for r in rects),
                    max(r.x_hi for r in rects), max(r.y_hi for r in rects))


class HRTree:
    """Copy-on-write historical R-tree over current object positions."""

    def __init__(self, page_size: int = 8192, buffer_capacity: int = 512,
                 path: str = MEMORY, fanout: int | None = None) -> None:
        self.pager = Pager(path, page_size)
        self.pool = BufferPool(self.pager, buffer_capacity)
        usable = page_size - _HEADER.size
        self.leaf_cap = usable // _LEAF_ENTRY.size
        self.internal_cap = usable // _INT_ENTRY.size
        if fanout is not None:
            self.leaf_cap = min(self.leaf_cap, fanout)
            self.internal_cap = min(self.internal_cap, fanout)
        #: sorted version timestamps and their roots (0 = empty version).
        self._version_times: list[int] = []
        self._version_roots: list[int] = []
        #: in-memory page reference counts (version sharing).
        self._refs: dict[int, int] = {}
        self._positions: dict[int, tuple[int, int]] = {}
        self.now = 0

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def version_count(self) -> int:
        return len(self._version_times)

    def live_pages(self) -> int:
        """Pages currently referenced by any retained version."""
        return len(self._refs)

    # -- page IO ---------------------------------------------------------------

    def _read(self, page_id: int) -> _Node:
        raw = self.pool.fetch(page_id)
        node_type, count = _HEADER.unpack_from(raw)
        node = _Node(is_leaf=node_type == _LEAF_TYPE)
        offset = _HEADER.size
        if node.is_leaf:
            for _ in range(count):
                node.entries.append(_LEAF_ENTRY.unpack_from(raw, offset))
                offset += _LEAF_ENTRY.size
        else:
            for _ in range(count):
                x_lo, y_lo, x_hi, y_hi, child = _INT_ENTRY.unpack_from(
                    raw, offset)
                node.entries.append((Rect(x_lo, y_lo, x_hi, y_hi), child))
                offset += _INT_ENTRY.size
        return node

    def _write_new(self, node: _Node) -> int:
        """Write an immutable node to a fresh page; children gain a ref."""
        page = self.pool.allocate()
        parts = [_HEADER.pack(_LEAF_TYPE if node.is_leaf
                              else _INTERNAL_TYPE, len(node.entries))]
        if node.is_leaf:
            for oid, x, y in node.entries:
                parts.append(_LEAF_ENTRY.pack(oid, x, y))
        else:
            for rect, child in node.entries:
                parts.append(_INT_ENTRY.pack(rect.x_lo, rect.y_lo,
                                             rect.x_hi, rect.y_hi, child))
                self._refs[child] = self._refs.get(child, 0) + 1
        raw = b"".join(parts)
        self.pool.write(page, raw.ljust(self.pool.page_size, b"\x00"))
        self._refs.setdefault(page, 0)
        return page

    def _release(self, page_id: int) -> None:
        """Drop one reference; free the page (and children) at zero."""
        count = self._refs.get(page_id, 0)
        if count > 1:
            self._refs[page_id] = count - 1
            return
        node = self._read(page_id)
        if not node.is_leaf:
            for _, child in node.entries:
                self._release(child)
        self._refs.pop(page_id, None)
        self.pool.free(page_id)

    # -- versioned updates -------------------------------------------------------

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Record the object's position at time ``t`` (new version root)."""
        if t < self.now:
            raise ValueError(f"out-of-order report at {t} < now {self.now}")
        self.now = t
        committed = self._version_roots[-1] if self._version_roots else 0
        previous = self._positions.get(oid)
        intermediate = committed
        if previous is not None:
            intermediate = self._delete_cow(committed, oid, previous)
        root = self._insert_cow(intermediate, oid, x, y)
        self._positions[oid] = (x, y)
        if self._version_times and self._version_times[-1] == t:
            # Same-timestamp batch: replace the version in place.
            old_root = self._version_roots[-1]
            self._version_roots[-1] = root
            if root:
                self._refs[root] = self._refs.get(root, 0) + 1
            if old_root:
                self._release(old_root)
        else:
            self._version_times.append(t)
            self._version_roots.append(root)
            if root:
                self._refs[root] = self._refs.get(root, 0) + 1
        # The delete-phase root (if distinct) is transient garbage: its
        # path copies are referenced by nothing once the final version
        # root is committed.
        if intermediate not in (committed, root) and intermediate:
            self._release(intermediate)

    def _insert_cow(self, root: int, oid: int, x: int, y: int) -> int:
        if root == 0:
            return self._write_new(_Node(True, [(oid, x, y)]))
        result = self._insert_rec(root, oid, x, y)
        if len(result) == 1:
            return result[0][1]
        return self._write_new(_Node(False, result))

    def _insert_rec(self, page_id: int, oid: int, x: int,
                    y: int) -> list[tuple[Rect, int]]:
        """Copy-on-write insert; returns 1 or 2 (mbr, new page) entries."""
        node = self._read(page_id)
        if node.is_leaf:
            entries = node.entries + [(oid, x, y)]
            if len(entries) <= self.leaf_cap:
                new = _Node(True, entries)
                return [(new.mbr(), self._write_new(new))]
            half = len(entries) // 2
            entries.sort(key=lambda e: (e[1], e[2]))
            left = _Node(True, entries[:half])
            right = _Node(True, entries[half:])
            return [(left.mbr(), self._write_new(left)),
                    (right.mbr(), self._write_new(right))]
        best = min(range(len(node.entries)),
                   key=lambda i: _enlarge(node.entries[i][0], x, y))
        replacement = self._insert_rec(node.entries[best][1], oid, x, y)
        entries = (node.entries[:best] + replacement
                   + node.entries[best + 1:])
        if len(entries) <= self.internal_cap:
            new = _Node(False, entries)
            return [(new.mbr(), self._write_new(new))]
        entries.sort(key=lambda e: (e[0].x_lo, e[0].y_lo))
        half = len(entries) // 2
        left = _Node(False, entries[:half])
        right = _Node(False, entries[half:])
        return [(left.mbr(), self._write_new(left)),
                (right.mbr(), self._write_new(right))]

    def _delete_cow(self, root: int, oid: int,
                    position: tuple[int, int]) -> int:
        if root == 0:  # pragma: no cover - defensive
            return 0
        replacement = self._delete_rec(root, oid, position)
        if replacement is None:  # pragma: no cover - defensive
            return root
        return replacement

    def _delete_rec(self, page_id: int, oid: int,
                    position: tuple[int, int]) -> int | None:
        """Copy-on-write delete; returns the new page (0 = emptied) or
        None if the entry is not in this subtree."""
        node = self._read(page_id)
        x, y = position
        if node.is_leaf:
            for idx, entry in enumerate(node.entries):
                if entry == (oid, x, y):
                    remaining = node.entries[:idx] + node.entries[idx + 1:]
                    if not remaining:
                        return 0
                    return self._write_new(_Node(True, remaining))
            return None
        for idx, (rect, child) in enumerate(node.entries):
            if not rect.contains(x, y):
                continue
            replacement = self._delete_rec(child, oid, position)
            if replacement is None:
                continue
            if replacement == 0:
                entries = node.entries[:idx] + node.entries[idx + 1:]
                if not entries:
                    return 0
            else:
                new_mbr = self._read(replacement).mbr()
                entries = (node.entries[:idx] + [(new_mbr, replacement)]
                           + node.entries[idx + 1:])
            return self._write_new(_Node(False, entries))
        return None

    # -- queries ---------------------------------------------------------------

    def _root_at(self, t: int) -> int:
        idx = bisect.bisect_right(self._version_times, t) - 1
        if idx < 0:
            return 0
        return self._version_roots[idx]

    def query_timeslice(self, area: Rect, t: int) -> list[tuple[int, int,
                                                                int]]:
        """(oid, x, y) of objects inside ``area`` at time ``t`` — one
        R-tree search, the HR-tree's strength."""
        root = self._root_at(t)
        if root == 0:
            return []
        results: list[tuple[int, int, int]] = []
        stack = [root]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                results.extend(e for e in node.entries
                               if area.contains(e[1], e[2]))
            else:
                stack.extend(child for rect, child in node.entries
                             if rect.intersects(area))
        return results

    def query_interval(self, area: Rect, t_lo: int,
                       t_hi: int) -> list[tuple[int, int, int]]:
        """Objects inside ``area`` at any version in [t_lo, t_hi] — one
        search *per version*, the weakness the paper calls out."""
        start = max(bisect.bisect_right(self._version_times, t_lo) - 1, 0)
        end = bisect.bisect_right(self._version_times, t_hi)
        seen: set[tuple[int, int, int]] = set()
        for idx in range(start, end):
            root = self._version_roots[idx]
            if root == 0:
                continue
            stack = [root]
            while stack:
                node = self._read(stack.pop())
                if node.is_leaf:
                    for entry in node.entries:
                        if area.contains(entry[1], entry[2]):
                            seen.add(entry)
                else:
                    stack.extend(child for rect, child in node.entries
                                 if rect.intersects(area))
        return sorted(seen)

    # -- maintenance ----------------------------------------------------------

    def drop_versions_before(self, cutoff: int) -> int:
        """Reclaim versions older than ``cutoff`` (sliding-window expiry).

        The newest version at or before ``cutoff`` is retained because it
        is still the current state for timeslices in ``[cutoff, next)``.
        Returns the number of dropped versions; shared pages survive via
        their reference counts.
        """
        keep_from = max(bisect.bisect_right(self._version_times, cutoff)
                        - 1, 0)
        dropped = 0
        for idx in range(keep_from):
            root = self._version_roots[idx]
            if root:
                self._release(root)
            dropped += 1
        del self._version_times[:keep_from]
        del self._version_roots[:keep_from]
        return dropped

    def close(self) -> None:
        self.pool.close()
        self.pager.close()

    def __enter__(self) -> "HRTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _enlarge(rect: Rect, x: int, y: int) -> tuple[int, int]:
    grown = Rect(min(rect.x_lo, x), min(rect.y_lo, y),
                 max(rect.x_hi, x), max(rect.y_hi, y))
    return grown.area() - rect.area(), rect.area()
