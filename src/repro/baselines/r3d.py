"""3D R-tree historical baseline (Theodoridis et al., paper Section II).

Treats time as a third spatial dimension: every entry is the 3-D box
``(x, y) × [t_start, t_end]``.  Fine for a static history; the paper's
criticism — which the ablation benchmark demonstrates — is that removing
expired entries for a sliding window costs one full delete (with node
condensation and re-insertion) *per entry*, whereas SWST drops a whole
window of entries in O(pages).
"""

from __future__ import annotations

import struct

from ..core.records import Entry, Rect
from ..rtree.geometry import Box
from ..rtree.tree import RTree
from ..storage.buffer import BufferPool
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats

_ALIVE = (1 << 63) - 1  # open-ended time for current entries
_PAYLOAD = struct.Struct("<QQ")  # oid, duration (0 = current)


class R3DIndex:
    """Historical spatio-temporal index over a 3D R-tree."""

    def __init__(self, page_size: int = 8192,
                 buffer_capacity: int = 512, path: str = MEMORY) -> None:
        self.pager = Pager(path, page_size)
        self.pool = BufferPool(self.pager, buffer_capacity)
        self.tree = RTree(self.pool, ndim=3, payload_size=_PAYLOAD.size)
        self._current: dict[int, tuple[int, int, int]] = {}
        self.now = 0
        self._size = 0

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _box(x: int, y: int, s: int, d: int | None) -> Box:
        end = _ALIVE if d is None else s + d - 1
        return Box((x, y, s), (x, y, end))

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert a closed or current entry."""
        if s < self.now:
            raise ValueError(f"out-of-order start timestamp {s}")
        self.now = s
        if d is None:
            previous = self._current.get(oid)
            if previous is not None:
                px, py, ps = previous
                if s > ps:
                    self._finalize(oid, px, py, ps, s)
                else:
                    self.tree.delete(self._box(px, py, ps, None),
                                     _PAYLOAD.pack(oid, 0))
                    self._size -= 1
            self._current[oid] = (x, y, s)
        self.tree.insert(self._box(x, y, s, d),
                         _PAYLOAD.pack(oid, 0 if d is None else d))
        self._size += 1

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        self.insert(oid, x, y, t, None)

    def _finalize(self, oid: int, x: int, y: int, s: int, end: int) -> None:
        self.tree.delete(self._box(x, y, s, None), _PAYLOAD.pack(oid, 0))
        self.tree.insert(self._box(x, y, s, end - s),
                         _PAYLOAD.pack(oid, end - s))

    def query_interval(self, area: Rect, t_lo: int,
                       t_hi: int) -> list[Entry]:
        """Entries valid during [t_lo, t_hi] within ``area``."""
        query = Box((area.x_lo, area.y_lo, t_lo),
                    (area.x_hi, area.y_hi, t_hi))
        results: list[Entry] = []
        for box, payload in self.tree.iter_search(query):
            oid, duration = _PAYLOAD.unpack(payload)
            results.append(Entry(oid=oid, x=box.lo[0], y=box.lo[1],
                                 s=box.lo[2],
                                 d=duration if duration else None))
        return results

    def query_timeslice(self, area: Rect, t: int) -> list[Entry]:
        return self.query_interval(area, t, t)

    def expire_before(self, cutoff: int) -> int:
        """Delete every closed entry with start time below ``cutoff``.

        This is the per-entry sliding-window maintenance a 3D R-tree needs;
        the ablation benchmark contrasts its cost with SWST's O(pages)
        drop.  Returns the number of deleted entries.
        """
        probe = Box((0, 0, 0),
                    ((1 << 64) - 1, (1 << 64) - 1, max(cutoff - 1, 0)))
        stale = [(box, bytes(payload))
                 for box, payload in self.tree.iter_search(probe)
                 if box.lo[2] < cutoff]
        for box, payload in stale:
            self.tree.delete(box, payload)
        self._size -= len(stale)
        self._current = {oid: loc for oid, loc in self._current.items()
                         if loc[2] >= cutoff}
        return len(stale)

    def close(self) -> None:
        self.pool.close()
        self.pager.close()
