"""Baseline indexes: the correctness oracle and the historical comparators."""

from .hrtree import HRTree
from .naive import NaiveStore
from .pist import PISTIndex
from .r3d import R3DIndex
from .wave import WaveIndex

__all__ = ["HRTree", "NaiveStore", "PISTIndex", "R3DIndex", "WaveIndex"]
