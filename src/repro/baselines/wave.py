"""Wave-index-style baseline: one sub-index per slide step.

Section II discusses the two prior disk-based sliding-window indexes
(Shivakumar & Garcia-Molina's wave indices; Golab et al.'s partitioned
indexes): *"divide a (big) index into smaller sub-indexes so that the
insertion and deletion of entries could be restricted to specific smaller
sub-indexes... but a search may need to be performed on multiple
sub-indexes.  Our index scheme also employs sub-indexes, but with an
optimization to use only two of them."*

This module adapts that per-slide-partition design to the paper's data
model so the claim can be measured: one B+ tree per slide step, keyed by
the Z-curve location only (time discrimination comes entirely from the
partitioning).  Insertions and wholesale expiry are as cheap as SWST's,
but a query interval spanning ``k`` slide steps must search ``k`` separate
trees root-to-leaf — the cost SWST's two-tree modulo design and
multi-range search avoid.
"""

from __future__ import annotations

from ..btree.tree import BPlusTree
from ..core.config import SWSTConfig
from ..core.records import Entry, RECORD_SIZE, Rect
from ..sfc.zcurve import zc_encode
from ..storage.buffer import BufferPool
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats


class WaveIndex:
    """Per-slide-step partitioned sliding-window index.

    Shares :class:`SWSTConfig` for the window/slide/domain parameters
    (its spatial and temporal partition counts are unused).
    """

    def __init__(self, config: SWSTConfig, path: str = MEMORY) -> None:
        self.config = config
        self.pager = Pager(path, config.page_size)
        self.pool = BufferPool(self.pager, config.buffer_capacity)
        self.zc_order = config.zc_order
        # Slot j holds start times in [j*L, (j+1)*L) for the most recent
        # period; slots are recycled (dropped + refilled) as time moves.
        self._slots: dict[int, BPlusTree] = {}
        self._slot_period: dict[int, int] = {}
        self._num_slots = -(-config.w_max // config.slide) + 1
        self._current: dict[int, tuple[int, int, int]] = {}
        self._clock = 0
        self._size = 0

    @property
    def now(self) -> int:
        return self._clock

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def __len__(self) -> int:
        return self._size

    # -- internals ------------------------------------------------------------

    def _slot_of(self, s: int) -> tuple[int, int]:
        step = s // self.config.slide
        return step % self._num_slots, step

    def _tree_for_insert(self, s: int) -> BPlusTree:
        slot, period = self._slot_of(s)
        tree = self._slots.get(slot)
        if tree is None:
            tree = BPlusTree(self.pool, RECORD_SIZE)
            self._slots[slot] = tree
            self._slot_period[slot] = period
        elif self._slot_period[slot] != period:
            # The slot's previous slide step is fully expired: recycle.
            self._size -= len(tree)
            tree.drop()
            self._slot_period[slot] = period
        return tree

    def _tree_for_search(self, step: int) -> BPlusTree | None:
        slot = step % self._num_slots
        tree = self._slots.get(slot)
        if tree is None or self._slot_period[slot] != step:
            return None
        return tree

    def _key(self, entry: Entry) -> int:
        return zc_encode(entry.x, entry.y, self.zc_order)

    # -- stream interface -------------------------------------------------------

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert a closed (``d`` given) or current entry."""
        if s < self._clock:
            raise ValueError(f"out-of-order start timestamp {s}")
        self._clock = s
        if d is None:
            previous = self._current.get(oid)
            if previous is not None:
                self._finalize(oid, previous, end=s)
            self._current[oid] = (x, y, s)
        entry = Entry(oid, x, y, s, d)
        self._tree_for_insert(s).insert(self._key(entry), entry.pack())
        self._size += 1

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        self.insert(oid, x, y, t, None)

    def _finalize(self, oid: int, previous: tuple[int, int, int],
                  end: int) -> None:
        px, py, ps = previous
        step = ps // self.config.slide
        tree = self._tree_for_search(step)
        if tree is None:
            return  # the slot was already recycled
        old = Entry(oid, px, py, ps, None)
        if not tree.delete(self._key(old), old.pack()):
            return
        self._size -= 1
        if end > ps:
            closed = Entry(oid, px, py, ps, end - ps)
            tree.insert(self._key(closed), closed.pack())
            self._size += 1
        # end == ps: a same-timestamp correction; the replacement current
        # entry is inserted by the caller.

    # -- queries ---------------------------------------------------------------

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> list[Entry]:
        """Entries valid during [t_lo, t_hi] inside ``area``.

        Searches every live slide partition whose start-time band can hold
        a qualifying entry — the multi-sub-index cost this baseline
        exists to demonstrate.
        """
        q_lo, q_hi = self.config.queriable_period(self._clock, window)
        s_hi = min(q_hi, t_hi)
        if s_hi < q_lo:
            return []
        clipped = area.intersection(self.config.space)
        if clipped is None:
            return []
        z_lo = zc_encode(clipped.x_lo, clipped.y_lo, self.zc_order)
        z_hi = zc_encode(clipped.x_hi, clipped.y_hi, self.zc_order)
        results: list[Entry] = []
        slide = self.config.slide
        for step in range(q_lo // slide, s_hi // slide + 1):
            tree = self._tree_for_search(step)
            if tree is None:
                continue
            for _, payload in tree.iter_range(z_lo, z_hi):
                entry = Entry.unpack(payload)
                if (q_lo <= entry.s <= s_hi and entry.end > t_lo
                        and area.contains(entry.x, entry.y)):
                    results.append(entry)
        return results

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None) -> list[Entry]:
        return self.query_interval(area, t, t, window)

    # -- maintenance ----------------------------------------------------------

    def vacuum(self) -> int:
        """Drop every slot whose slide step has fully expired.

        Recycling normally happens lazily on insert; ``vacuum`` forces it
        (used by the maintenance benchmark).  Returns pages freed.
        """
        q_lo, _ = self.config.queriable_period(self._clock)
        freed = 0
        for slot, tree in self._slots.items():
            step = self._slot_period[slot]
            if (step + 1) * self.config.slide <= q_lo:
                self._size -= len(tree)
                freed += tree.drop()
                self._slot_period[slot] = -1  # mark recycled
        stale = [oid for oid, (_, _, s) in self._current.items()
                 if s < q_lo]
        for oid in stale:
            del self._current[oid]
        return freed

    def close(self) -> None:
        self.pool.close()
        self.pager.close()

    def __enter__(self) -> "WaveIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
