"""Naive in-memory scan store: the correctness oracle.

Implements the *exact* sliding-window semantics of Section III-A (output
relation, queriable period, current entries, logical windows) by linear
scan over a Python list.  Slow but obviously correct — the test suite
compares every index against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import SWSTConfig
from ..core.records import Entry, Rect


@dataclass
class NaiveStore:
    """Reference implementation of the sliding-window data model."""

    config: SWSTConfig
    closed: list[Entry] = field(default_factory=list)
    current: dict[int, Entry] = field(default_factory=dict)
    now: int = 0

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        if s < self.now:
            raise ValueError(f"out-of-order start timestamp {s}")
        self.now = s
        if d is not None:
            self.closed.append(Entry(oid, x, y, s, d))
            return
        previous = self.current.get(oid)
        if previous is not None and s > previous.s:
            self.closed.append(Entry(previous.oid, previous.x, previous.y,
                                     previous.s, s - previous.s))
        self.current[oid] = Entry(oid, x, y, s, None)

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        self.insert(oid, x, y, t, None)

    def close_object(self, oid: int, t: int) -> bool:
        self.now = max(self.now, t)
        previous = self.current.pop(oid, None)
        if previous is None:
            return False
        if t > previous.s:
            self.closed.append(Entry(previous.oid, previous.x, previous.y,
                                     previous.s, t - previous.s))
        return True

    def delete(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> bool:
        target = Entry(oid, x, y, s, d)
        if d is None:
            if self.current.get(oid) == target:
                del self.current[oid]
                return True
            return False
        try:
            self.closed.remove(target)
            return True
        except ValueError:
            return False

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> list[Entry]:
        q_lo, q_hi = self.config.queriable_period(self.now, window)
        s_hi = min(q_hi, t_hi)
        hits = [e for e in self.closed
                if q_lo <= e.s <= s_hi and e.end > t_lo
                and area.contains(e.x, e.y)]
        hits.extend(e for e in self.current.values()
                    if q_lo <= e.s <= s_hi and area.contains(e.x, e.y))
        return hits

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None) -> list[Entry]:
        return self.query_interval(area, t, t, window)
