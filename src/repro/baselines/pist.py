"""PIST-style baseline (Botea et al., GeoInformatica 2008).

PIST partitions space into a grid and gives each cell a composite B+ tree
on ``(t_start, t_end)``.  Long entries are **split** into sub-entries of
temporal length at most λ so that the search range
``t_start ∈ [tl - λ, th]`` stays tight.

The paper's Section V-A explains why PIST cannot be compared head-to-head
as a sliding-window index: it needs the whole dataset up front (to pick
partitions and λ), cannot store current entries, and its splitting makes
window maintenance require many per-sub-entry deletions.  This
implementation exists to reproduce those ablation arguments:

* :meth:`build` — bulk construction from a complete history,
* :meth:`query_interval` / :meth:`query_timeslice` — the λ-based search,
* :meth:`delete_expired` — per-entry window maintenance whose cost the
  ablation benchmark contrasts with SWST's O(pages) drop.
"""

from __future__ import annotations

from ..btree.tree import BPlusTree
from ..core.grid import SpatialGrid
from ..core.records import Entry, RECORD_SIZE, Rect
from ..storage.buffer import BufferPool
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats

_TIME_BITS = 40
_TIME_LIMIT = 1 << _TIME_BITS


def _key(ts: int, te: int) -> int:
    if not (0 <= ts < _TIME_LIMIT and 0 <= te < _TIME_LIMIT):
        raise ValueError(f"timestamps ({ts}, {te}) exceed {_TIME_BITS} bits")
    return (ts << _TIME_BITS) | te


class PISTIndex:
    """Grid + composite-(t_start, t_end) B+ tree historical index."""

    def __init__(self, space: Rect, x_partitions: int = 20,
                 y_partitions: int = 20, lam: int | None = None,
                 page_size: int = 8192, buffer_capacity: int = 512,
                 path: str = MEMORY) -> None:
        self.grid = SpatialGrid(space, x_partitions, y_partitions)
        self.lam = lam
        self.pager = Pager(path, page_size)
        self.pool = BufferPool(self.pager, buffer_capacity)
        self._trees: dict[tuple[int, int], BPlusTree] = {}
        self._built = False
        self._size = 0

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def __len__(self) -> int:
        """Number of stored sub-entries (>= number of logical entries)."""
        return self._size

    # -- construction -----------------------------------------------------------

    def build(self, entries: list[Entry]) -> None:
        """Bulk-build from a complete history of *closed* entries.

        If ``lam`` was not given it is chosen as the median duration — a
        stand-in for PIST's distribution-driven tuning, which also needs
        the full dataset in advance.
        """
        if self._built:
            raise RuntimeError("PIST is built exactly once from the full "
                               "dataset (paper Section V-A)")
        if any(e.d is None for e in entries):
            raise ValueError("PIST cannot store current entries "
                             "(paper Section V-A)")
        if self.lam is None:
            durations = sorted(e.d for e in entries) or [1]
            self.lam = max(1, durations[len(durations) // 2])
        # PIST is built once from the complete dataset, so each cell tree
        # can be bulk-loaded bottom-up from its sorted sub-entries.
        per_cell: dict[tuple[int, int], list[tuple[int, bytes]]] = {}
        for entry in entries:
            cell = self.grid.cell_of(entry.x, entry.y)
            per_cell.setdefault(cell, []).extend(self._split(entry))
        for cell, items in per_cell.items():
            items.sort(key=lambda item: item[0])
            tree = BPlusTree(self.pool, RECORD_SIZE)
            tree.bulk_load(items)
            self._trees[cell] = tree
            self._size += len(items)
        self._built = True

    def _split(self, entry: Entry) -> list[tuple[int, bytes]]:
        """Sub-entries of duration <= λ as (key, payload) pairs."""
        assert entry.d is not None and self.lam is not None
        items: list[tuple[int, bytes]] = []
        start = entry.s
        end = entry.s + entry.d
        while start < end:
            sub_end = min(start + self.lam, end)
            sub = Entry(entry.oid, entry.x, entry.y, start,
                        sub_end - start)
            items.append((_key(start, sub_end), sub.pack()))
            start = sub_end
        return items

    # -- queries -------------------------------------------------------------------

    def query_interval(self, area: Rect, t_lo: int,
                       t_hi: int) -> list[Entry]:
        """Qualifying sub-entries, deduplicated back into logical hits by
        ``(oid, first overlapping sub-start)`` — a query reports each
        object-visit once."""
        assert self.lam is not None
        results: list[Entry] = []
        seen: set[tuple[int, int, int]] = set()
        lo_key = _key(max(t_lo - self.lam, 0), 0)
        hi_key = _key(t_hi, _TIME_LIMIT - 1)
        for cell in self.grid.overlapping_cells(area):
            tree = self._trees.get((cell.cx, cell.cy))
            if tree is None:
                continue
            for _, payload in tree.iter_range(lo_key, hi_key):
                entry = Entry.unpack(payload)
                if entry.end <= t_lo:
                    continue
                if not cell.full and not area.contains(entry.x, entry.y):
                    continue
                dedup = (entry.oid, entry.x, entry.y)
                if dedup in seen:
                    continue
                seen.add(dedup)
                results.append(entry)
        return results

    def query_timeslice(self, area: Rect, t: int) -> list[Entry]:
        return self.query_interval(area, t, t)

    # -- window maintenance (the expensive path) --------------------------------------

    def delete_expired(self, cutoff: int) -> int:
        """Delete every sub-entry with start time below ``cutoff``.

        One logical entry may cost several B+ tree deletions because of
        splitting — the maintenance overhead the paper's Section V-A
        criticises.  Returns the number of deleted sub-entries.
        """
        deleted = 0
        hi_key = _key(max(cutoff - 1, 0), _TIME_LIMIT - 1)
        for tree in self._trees.values():
            stale = [(key, bytes(payload))
                     for key, payload in tree.iter_range(0, hi_key)]
            for key, payload in stale:
                if tree.delete(key, payload):
                    deleted += 1
        self._size -= deleted
        return deleted

    def close(self) -> None:
        self.pool.close()
        self.pager.close()
