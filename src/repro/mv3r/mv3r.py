"""MV3R facade: multi-version R-tree + auxiliary 3D R-tree.

Presents the same stream-facing interface as :class:`repro.core.SWSTIndex`
(``report`` / ``insert`` / timeslice / interval queries returning
:class:`Entry` lists), so the benchmark harness can drive both indexes with
identical workloads.

Query routing follows the original system: timeslice and short interval
queries walk the MVR-tree versions; long interval queries (those spanning
more than ``aux_threshold`` of the data's time extent) use the auxiliary
3D R-tree over dead leaves plus a walk of the alive path.

MV3R is **partially persistent**: closed entries can never be updated or
deleted and no page is ever reclaimed, so it cannot implement the sliding
window — the structural limitation the paper's Section IV-A discusses.
"""

from __future__ import annotations

from ..core.records import Entry, Rect
from ..storage.buffer import BufferPool
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats
from .aux3d import LeafDirectory
from .mvrtree import INF, MVRTree, VersionedEntry


class MV3RTree:
    """The paper's baseline historical index.

    Args:
        page_size: disk page size (paper default 8 KiB).
        buffer_capacity: buffer pool size in pages.
        path: page file path or ``":memory:"``.
        use_aux: maintain the auxiliary 3D R-tree over dead leaves.
        aux_threshold: interval queries longer than this many time units
            route through the auxiliary tree (0 = always for true
            intervals).
    """

    def __init__(self, page_size: int = 8192, buffer_capacity: int = 512,
                 path: str = MEMORY, use_aux: bool = True,
                 aux_threshold: int = 0) -> None:
        self.pager = Pager(path, page_size)
        self.pool = BufferPool(self.pager, buffer_capacity)
        self.mvr = MVRTree(self.pool)
        self.aux: LeafDirectory | None = None
        self.aux_threshold = aux_threshold
        if use_aux:
            self.aux = LeafDirectory(self.pool)
            self.mvr.on_leaf_death = self.aux.add_dead_leaf
        self._size = 0

    @property
    def now(self) -> int:
        return self.mvr.now

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    def __len__(self) -> int:
        return self._size

    # -- stream interface ---------------------------------------------------------

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report: one update (close previous) + one insertion."""
        self.mvr.report(oid, x, y, t)
        self._size += 1

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert a closed entry (``d`` given) or a current entry."""
        te = INF if d is None else s + d
        self.mvr.insert(oid, x, y, s, te)
        self._size += 1

    # -- queries --------------------------------------------------------------------

    def query_timeslice(self, area: Rect, t: int) -> list[Entry]:
        """Entries valid at ``t`` inside ``area`` (single-version walk)."""
        return [self._to_entry(e)
                for e in self.mvr.query_timeslice(area, t)]

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       use_aux: bool | None = None) -> list[Entry]:
        """Entries valid during any part of ``[t_lo, t_hi]`` inside
        ``area``.

        Args:
            use_aux: force (True) or forbid (False) the auxiliary-tree
                path; ``None`` routes automatically by interval length.
        """
        if use_aux is None:
            use_aux = (self.aux is not None
                       and t_hi - t_lo > self.aux_threshold)
        if not use_aux or self.aux is None:
            return [self._to_entry(e)
                    for e in self.mvr.query_interval(area, t_lo, t_hi)]
        return self._query_interval_aux(area, t_lo, t_hi)

    def _query_interval_aux(self, area: Rect, t_lo: int,
                            t_hi: int) -> list[Entry]:
        """Dead leaves via the 3D tree + alive leaves via the alive path."""
        assert self.aux is not None
        seen: set[tuple[int, int]] = set()
        results: list[Entry] = []

        def collect_leaf(page: int) -> None:
            node = self.mvr._read(page)
            for entry in node.entries:
                if (entry.ts <= t_hi and entry.te > t_lo
                        and area.contains(entry.x, entry.y)
                        and (entry.oid, entry.ts) not in seen):
                    seen.add((entry.oid, entry.ts))
                    results.append(self._to_entry(entry))

        for page in self.aux.search(area, t_lo, t_hi):
            collect_leaf(page)
        # Alive path: every still-current leaf, pruned spatially.
        stack = [self.mvr.root_page]
        while stack:
            page = stack.pop()
            node = self.mvr._read(page)
            if node.is_leaf:
                collect_leaf_inline = node  # leaf already read; reuse it
                for entry in collect_leaf_inline.entries:
                    if (entry.ts <= t_hi and entry.te > t_lo
                            and area.contains(entry.x, entry.y)
                            and (entry.oid, entry.ts) not in seen):
                        seen.add((entry.oid, entry.ts))
                        results.append(self._to_entry(entry))
            else:
                for ref in node.entries:
                    if ref.alive and ref.rect.intersects(area):
                        stack.append(ref.child)
        return results

    @staticmethod
    def _to_entry(versioned: VersionedEntry) -> Entry:
        d = None if versioned.te == INF else versioned.te - versioned.ts
        return Entry(oid=versioned.oid, x=versioned.x, y=versioned.y,
                     s=versioned.ts, d=d)

    # -- diagnostics ---------------------------------------------------------------

    def node_count(self) -> int:
        """Pages used by the MVR-tree (never shrinks) plus the aux tree."""
        total = self.mvr.node_count()
        if self.aux is not None:
            total += self.aux.node_count()
        return total

    def close(self) -> None:
        self.pool.close()
        self.pager.close()

    def __enter__(self) -> "MV3RTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
