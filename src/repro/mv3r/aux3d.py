"""MV3R's auxiliary 3D R-tree.

The full MV3R index pairs the multi-version R-tree with a small 3D R-tree
built over the *leaves* of the MVR-tree, used to answer long interval
queries without walking many tree versions.  Here the auxiliary tree
indexes every **frozen (dead) leaf** as a 3-D box
``(spatial MBR) × (version interval)`` with the leaf's page id as payload;
alive leaves are reached by walking the current version's alive path.
Together the two sets cover every leaf exactly once.
"""

from __future__ import annotations

import struct

from ..core.records import Rect
from ..rtree.geometry import Box
from ..rtree.tree import RTree
from ..storage.buffer import BufferPool

_PAYLOAD = struct.Struct("<Q")


class LeafDirectory:
    """3D R-tree over the frozen leaves of an MVR-tree."""

    def __init__(self, pool: BufferPool) -> None:
        self._tree = RTree(pool, ndim=3, payload_size=_PAYLOAD.size)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add_dead_leaf(self, page: int, mbr: Rect, t_birth: int,
                      t_death: int) -> None:
        """Register a leaf frozen at ``t_death`` (callback target for
        :attr:`MVRTree.on_leaf_death`)."""
        box = Box((mbr.x_lo, mbr.y_lo, t_birth),
                  (mbr.x_hi, mbr.y_hi, max(t_death, t_birth)))
        self._tree.insert(box, _PAYLOAD.pack(page))
        self._count += 1

    def search(self, area: Rect, t_lo: int, t_hi: int) -> list[int]:
        """Pages of dead leaves whose MBR × lifetime intersects the query."""
        query = Box((area.x_lo, area.y_lo, t_lo),
                    (area.x_hi, area.y_hi, t_hi))
        return [_PAYLOAD.unpack(payload)[0]
                for _, payload in self._tree.iter_search(query)]

    def node_count(self) -> int:
        return self._tree.node_count()
