"""MV3R-tree baseline (Tao & Papadias, VLDB 2001), built from scratch."""

from .aux3d import LeafDirectory
from .mv3r import MV3RTree
from .mvrtree import INF, MVRTree, VersionedEntry

__all__ = ["INF", "LeafDirectory", "MV3RTree", "MVRTree", "VersionedEntry"]
