"""Multi-version R-tree: the MVR part of the MV3R baseline (Tao & Papadias,
VLDB 2001).

A partially persistent R-tree over discretely moving points.  Leaf entries
are ``(oid, x, y, t_start, t_end)`` where ``t_end = INF`` marks the object's
*current* (alive) entry; internal entries carry a child pointer, the child's
MBR and the child's **version interval** ``[t_ins, t_del)``.

Structural behaviour follows the multiversion B-tree recipe adapted to
rectangles:

* inserts go to the single *alive* path (partial persistency — only current
  entries may ever be modified);
* an overflowing node undergoes a **version split**: its alive entries are
  copied into a fresh node, the old node is frozen and its parent reference
  is closed at the split time; if the copy would be nearly full it is
  further **key split** into two nodes (strong version condition);
* pages are never reclaimed — exactly the paper's criticism that MV3R
  "will go on increasing with time, with no systematic way to clean up".

Deviations from the authors' implementation (constants, not shape): the
weak-version merge of sparse copies is omitted, and the split heuristics
are Guttman-quadratic rather than the authors' tuned ones.

Because version splits copy alive entries, one logical entry can surface in
several physical nodes; queries deduplicate by ``(oid, t_start)``.  Stale
``t_end = INF`` copies in frozen nodes are harmless: an entry copied alive
at freeze time ``T`` truly ends at or after ``T``, and frozen nodes are only
reachable for query times below ``T``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.records import Rect
from ..storage.buffer import BufferPool

INF = (1 << 64) - 1

_HEADER = struct.Struct("<BH")
_LEAF_TYPE = 1
_INTERNAL_TYPE = 2
_LEAF_ENTRY = struct.Struct("<QIIQQ")          # oid, x, y, ts, te
_INT_ENTRY = struct.Struct("<IIIIQQQ")         # rect, t_ins, t_del, child


@dataclass(frozen=True, slots=True)
class VersionedEntry:
    """One leaf record: a point location with its valid interval."""

    oid: int
    x: int
    y: int
    ts: int
    te: int  # INF while alive

    @property
    def alive(self) -> bool:
        return self.te == INF


@dataclass(slots=True)
class _ChildRef:
    rect: Rect
    t_ins: int
    t_del: int  # INF while the child is current
    child: int

    @property
    def alive(self) -> bool:
        return self.t_del == INF


@dataclass(slots=True)
class _Node:
    is_leaf: bool
    entries: list[Any] = field(default_factory=list)


@dataclass
class _Replacement:
    """Result of a version split: new nodes that supersede a dead one."""

    nodes: list[tuple[Rect, int]]  # (mbr, page)


class MVRTree:
    """The multi-version R-tree component of MV3R."""

    def __init__(self, pool: BufferPool,
                 strong_fraction: float = 0.8) -> None:
        self.pool = pool
        usable = pool.page_size - _HEADER.size
        self.leaf_cap = usable // _LEAF_ENTRY.size
        self.internal_cap = usable // _INT_ENTRY.size
        self.strong_fraction = strong_fraction
        root = pool.allocate()
        self._write(root, _Node(is_leaf=True))
        #: (page, t_start, t_end) — version intervals of successive roots.
        self.roots: list[list[int]] = [[root, 0, INF]]
        #: oid -> leaf page currently holding the object's alive entry.
        self._alive_leaf: dict[int, int] = {}
        #: page -> creation time, for alive nodes (used on leaf death).
        self._birth: dict[int, int] = {root: 0}
        #: optional callback(page, mbr, t_birth, t_death) fired when a leaf
        #: is frozen by a version split — feeds MV3R's auxiliary 3D R-tree.
        self.on_leaf_death = None
        self.now = 0

    # -- page IO ---------------------------------------------------------------

    def _read(self, page_id: int) -> _Node:
        raw = self.pool.fetch(page_id)
        node_type, count = _HEADER.unpack_from(raw)
        node = _Node(is_leaf=node_type == _LEAF_TYPE)
        offset = _HEADER.size
        if node.is_leaf:
            for _ in range(count):
                node.entries.append(
                    VersionedEntry(*_LEAF_ENTRY.unpack_from(raw, offset)))
                offset += _LEAF_ENTRY.size
        else:
            for _ in range(count):
                x_lo, y_lo, x_hi, y_hi, t_ins, t_del, child = \
                    _INT_ENTRY.unpack_from(raw, offset)
                node.entries.append(_ChildRef(Rect(x_lo, y_lo, x_hi, y_hi),
                                              t_ins, t_del, child))
                offset += _INT_ENTRY.size
        return node

    def _write(self, page_id: int, node: _Node) -> None:
        parts = [_HEADER.pack(_LEAF_TYPE if node.is_leaf else _INTERNAL_TYPE,
                              len(node.entries))]
        if node.is_leaf:
            for e in node.entries:
                parts.append(_LEAF_ENTRY.pack(e.oid, e.x, e.y, e.ts, e.te))
        else:
            for r in node.entries:
                parts.append(_INT_ENTRY.pack(r.rect.x_lo, r.rect.y_lo,
                                             r.rect.x_hi, r.rect.y_hi,
                                             r.t_ins, r.t_del, r.child))
        raw = b"".join(parts)
        if len(raw) > self.pool.page_size:
            raise ValueError("MVR node overflows page")
        self.pool.write(page_id, raw.ljust(self.pool.page_size, b"\x00"))

    # -- maintenance helpers -------------------------------------------------------

    @property
    def root_page(self) -> int:
        return self.roots[-1][0]

    @staticmethod
    def _mbr(node: _Node) -> Rect:
        if node.is_leaf:
            xs = [e.x for e in node.entries]
            ys = [e.y for e in node.entries]
            return Rect(min(xs), min(ys), max(xs), max(ys))
        rects = [r.rect for r in node.entries]
        return Rect(min(r.x_lo for r in rects), min(r.y_lo for r in rects),
                    max(r.x_hi for r in rects), max(r.y_hi for r in rects))

    # -- insertion (paper Section IV-A: "one update and one insertion") --------------

    def insert(self, oid: int, x: int, y: int, ts: int,
               te: int = INF) -> None:
        """Insert an entry; ``te=INF`` makes it the object's current entry."""
        if ts < self.now:
            raise ValueError(f"out-of-order insert at {ts} < now {self.now}")
        self.now = ts
        result = self._insert_rec(self.root_page, oid, x, y, ts, te)
        if isinstance(result, _Replacement):
            self._replace_root(result, ts)
        if te == INF:
            # _insert_rec already recorded the leaf in _alive_leaf.
            assert oid in self._alive_leaf

    def logical_delete(self, oid: int, t: int) -> bool:
        """Close the object's current entry at time ``t`` (the "update" half
        of an MV3R position report)."""
        leaf_page = self._alive_leaf.pop(oid, None)
        if leaf_page is None:
            return False
        node = self._read(leaf_page)
        for idx, entry in enumerate(node.entries):
            if entry.oid == oid and entry.alive:
                node.entries[idx] = VersionedEntry(entry.oid, entry.x,
                                                   entry.y, entry.ts, t)
                self._write(leaf_page, node)
                return True
        raise RuntimeError(  # pragma: no cover - map corruption
            f"alive-leaf map points at a leaf without object {oid}")

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report: close the previous entry, insert the new one."""
        self.logical_delete(oid, t)
        self.insert(oid, x, y, t)

    def _insert_rec(self, page_id: int, oid: int, x: int, y: int, ts: int,
                    te: int) -> Rect | _Replacement:
        """Returns the node's new MBR, or a :class:`_Replacement` if the
        node version-split."""
        node = self._read(page_id)
        if node.is_leaf:
            entry = VersionedEntry(oid, x, y, ts, te)
            if len(node.entries) < self.leaf_cap:
                node.entries.append(entry)
                self._write(page_id, node)
                if te == INF:
                    self._alive_leaf[oid] = page_id
                return self._mbr(node)
            replacement = self._version_split_leaf(node, entry, ts)
            self._record_leaf_death(page_id, node, ts)
            return replacement
        child_idx = self._choose_subtree(node, x, y)
        ref = node.entries[child_idx]
        result = self._insert_rec(ref.child, oid, x, y, ts, te)
        if isinstance(result, Rect):
            if result != ref.rect:
                node.entries[child_idx] = _ChildRef(result, ref.t_ins,
                                                    ref.t_del, ref.child)
                self._write(page_id, node)
            return self._mbr(node)
        # Child version-split: close the old reference, add the new ones.
        node.entries[child_idx] = _ChildRef(ref.rect, ref.t_ins, ts,
                                            ref.child)
        new_refs = [_ChildRef(mbr, ts, INF, page)
                    for mbr, page in result.nodes]
        if len(node.entries) + len(new_refs) <= self.internal_cap:
            node.entries.extend(new_refs)
            self._write(page_id, node)
            return self._mbr(node)
        self._birth.pop(page_id, None)
        return self._version_split_internal(node, new_refs, ts)

    def _choose_subtree(self, node: _Node, x: int, y: int) -> int:
        """Least-enlargement alive child."""
        best_idx = -1
        best = None
        for idx, ref in enumerate(node.entries):
            if not ref.alive:
                continue
            rect = ref.rect
            grown = Rect(min(rect.x_lo, x), min(rect.y_lo, y),
                         max(rect.x_hi, x), max(rect.y_hi, y))
            cost = (grown.area() - rect.area(), rect.area())
            if best is None or cost < best:
                best = cost
                best_idx = idx
        if best_idx < 0:  # pragma: no cover - alive path invariant
            raise RuntimeError("internal node on the alive path has no "
                               "alive children")
        return best_idx

    def _version_split_leaf(self, node: _Node, incoming: VersionedEntry,
                            t: int) -> _Replacement:
        alive = [e for e in node.entries if e.alive]
        alive.append(incoming)
        groups = self._maybe_key_split(
            alive, self.leaf_cap,
            key=lambda e: (e.x, e.y, e.x, e.y))
        nodes: list[tuple[Rect, int]] = []
        for group in groups:
            page = self.pool.allocate()
            new_node = _Node(is_leaf=True, entries=group)
            self._write(page, new_node)
            self._birth[page] = t
            for entry in group:
                if entry.alive:
                    self._alive_leaf[entry.oid] = page
            nodes.append((self._mbr(new_node), page))
        return _Replacement(nodes=nodes)

    def _record_leaf_death(self, page_id: int, node: _Node, t: int) -> None:
        birth = self._birth.pop(page_id, 0)
        if self.on_leaf_death is not None:
            self.on_leaf_death(page_id, self._mbr(node), birth, t)

    def _version_split_internal(self, node: _Node,
                                extra: list[_ChildRef],
                                t: int) -> _Replacement:
        alive = [r for r in node.entries if r.alive]
        alive.extend(extra)
        groups = self._maybe_key_split(
            alive, self.internal_cap,
            key=lambda r: (r.rect.x_lo, r.rect.y_lo, r.rect.x_hi,
                           r.rect.y_hi))
        nodes: list[tuple[Rect, int]] = []
        for group in groups:
            page = self.pool.allocate()
            new_node = _Node(is_leaf=False, entries=group)
            self._write(page, new_node)
            self._birth[page] = t
            nodes.append((self._mbr(new_node), page))
        return _Replacement(nodes=nodes)

    def _maybe_key_split(
            self, entries: list[Any], cap: int,
            key: Callable[[Any], tuple[int, int, int, int]],
    ) -> list[list[Any]]:
        """Strong version condition: key-split a too-full version copy."""
        if len(entries) <= int(cap * self.strong_fraction):
            return [entries]
        return self._quadratic_split(entries, key)

    @staticmethod
    def _quadratic_split(
            entries: list[Any],
            key: Callable[[Any], tuple[int, int, int, int]],
    ) -> list[list[Any]]:
        """Guttman quadratic split on the entry rectangles."""
        def rect_of(e: Any) -> Rect:
            x_lo, y_lo, x_hi, y_hi = key(e)
            return Rect(x_lo, y_lo, x_hi, y_hi)

        def waste(a: Rect, b: Rect) -> int:
            union = Rect(min(a.x_lo, b.x_lo), min(a.y_lo, b.y_lo),
                         max(a.x_hi, b.x_hi), max(a.y_hi, b.y_hi))
            return union.area() - a.area() - b.area()

        rects = [rect_of(e) for e in entries]
        worst, seeds = None, (0, 1)
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                w = waste(rects[i], rects[j])
                if worst is None or w > worst:
                    worst, seeds = w, (i, j)
        def extend(mbr: Rect, rect: Rect) -> Rect:
            return Rect(min(mbr.x_lo, rect.x_lo), min(mbr.y_lo, rect.y_lo),
                        max(mbr.x_hi, rect.x_hi), max(mbr.y_hi, rect.y_hi))

        group_a, group_b = [seeds[0]], [seeds[1]]
        mbr_a, mbr_b = rects[seeds[0]], rects[seeds[1]]
        min_fill = max(1, len(entries) * 2 // 5)
        rest = [i for i in range(len(entries)) if i not in seeds]
        for pos, i in enumerate(rest):
            remaining = len(rest) - pos
            if len(group_a) + remaining <= min_fill:
                target = "a"  # group a must take everything left
            elif len(group_b) + remaining <= min_fill:
                target = "b"
            else:
                grow_a = waste(mbr_a, rects[i])
                grow_b = waste(mbr_b, rects[i])
                target = "a" if grow_a <= grow_b else "b"
            if target == "a":
                group_a.append(i)
                mbr_a = extend(mbr_a, rects[i])
            else:
                group_b.append(i)
                mbr_b = extend(mbr_b, rects[i])
        return [[entries[i] for i in group_a],
                [entries[i] for i in group_b]]

    def _replace_root(self, replacement: _Replacement, t: int) -> None:
        self.roots[-1][2] = t
        if len(replacement.nodes) == 1:
            self.roots.append([replacement.nodes[0][1], t, INF])
            return
        root = _Node(is_leaf=False,
                     entries=[_ChildRef(mbr, t, INF, page)
                              for mbr, page in replacement.nodes])
        page = self.pool.allocate()
        self._write(page, root)
        self.roots.append([page, t, INF])

    # -- queries ---------------------------------------------------------------

    def query_timeslice(self, area: Rect, t: int) -> list[VersionedEntry]:
        """Entries valid at timestamp ``t`` within ``area``."""
        return self.query_interval(area, t, t)

    def query_interval(self, area: Rect, t_lo: int,
                       t_hi: int) -> list[VersionedEntry]:
        """Entries whose valid time intersects ``[t_lo, t_hi]`` within
        ``area``; deduplicated across version copies."""
        seen: set[tuple[int, int]] = set()
        results: list[VersionedEntry] = []
        stack = [page for page, r_lo, r_hi in self.roots
                 if r_lo <= t_hi and r_hi > t_lo]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                for entry in node.entries:
                    if (entry.ts <= t_hi and entry.te > t_lo
                            and area.contains(entry.x, entry.y)
                            and (entry.oid, entry.ts) not in seen):
                        seen.add((entry.oid, entry.ts))
                        results.append(entry)
            else:
                for ref in node.entries:
                    if (ref.t_ins <= t_hi and ref.t_del > t_lo
                            and ref.rect.intersects(area)):
                        stack.append(ref.child)
        return results

    # -- diagnostics ---------------------------------------------------------------

    def alive_leaves(self) -> list[int]:
        """Pages of leaves on the alive version (diagnostics)."""
        pages: list[int] = []
        stack = [self.root_page]
        while stack:
            page = stack.pop()
            node = self._read(page)
            if node.is_leaf:
                pages.append(page)
            else:
                stack.extend(ref.child for ref in node.entries if ref.alive)
        return pages

    def check_invariants(self) -> None:
        """Validate the multi-version structure; raises on violation.

        Checks: root version intervals partition the timeline; on the
        *alive* path every parent reference's MBR covers its child's
        current MBR (frozen nodes are exempt — their stale MBRs are
        harmless because queries reaching them are bounded by the node's
        death time); leaf entries have ``ts <= te``; and the alive-leaf
        map points at leaves that really hold an alive entry for the
        object.
        """
        for (_, _, prev_end), (_, start, _) in zip(self.roots,
                                                   self.roots[1:],
                                                   strict=False):
            assert prev_end == start, "root version intervals have gaps"
        assert self.roots[-1][2] == INF, "no current root"
        self._check_alive_subtree(self.root_page)
        for oid, page in self._alive_leaf.items():
            node = self._read(page)
            assert node.is_leaf, "alive-leaf map points at internal node"
            assert any(e.oid == oid and e.alive for e in node.entries), \
                f"object {oid} has no alive entry in its mapped leaf"

    def _check_alive_subtree(self, page_id: int) -> Rect | None:
        node = self._read(page_id)
        if node.is_leaf:
            for entry in node.entries:
                assert entry.ts <= entry.te, "entry ends before it starts"
            return self._mbr(node) if node.entries else None
        for ref in node.entries:
            assert ref.t_ins <= ref.t_del, "child reference version " \
                                           "interval inverted"
            if not ref.alive:
                continue
            child_mbr = self._check_alive_subtree(ref.child)
            if child_mbr is not None:
                assert ref.rect.covers(child_mbr), \
                    "alive reference MBR does not cover its child"
        return self._mbr(node) if node.entries else None

    def node_count(self) -> int:
        """Distinct pages reachable from any root (the ever-growing size)."""
        seen: set[int] = set()
        stack = [page for page, _, _ in self.roots]
        while stack:
            page = stack.pop()
            if page in seen:
                continue
            seen.add(page)
            node = self._read(page)
            if not node.is_leaf:
                stack.extend(ref.child for ref in node.entries)
        return len(seen)
