"""Disk-based R-tree (Guttman, quadratic split).

A general n-dimensional R-tree over the shared buffer pool.  It backs the
3D R-tree historical baseline (Theodoridis et al., the paper's Section II)
and MV3R's auxiliary tree.  Coordinates are unsigned 64-bit integers, so
the time axis can use a large "still alive" sentinel.

Page layout (little-endian)::

    u8 type(1=leaf, 2=internal)  u16 count
    leaf entry:     2·ndim × u64 box , payload[payload_size]
    internal entry: 2·ndim × u64 box , u64 child
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from ..storage.buffer import BufferPool
from .geometry import Box, union_all

_HEADER = struct.Struct("<BH")
_LEAF_TYPE = 1
_INTERNAL_TYPE = 2
_CHILD = struct.Struct("<Q")


@dataclass
class _Node:
    is_leaf: bool
    boxes: list[Box]
    payloads: list[bytes]       # leaf only
    children: list[int]         # internal only

    def mbr(self) -> Box:
        return union_all(self.boxes)


class RTree:
    """Guttman R-tree with quadratic node splitting.

    Args:
        pool: buffer pool for page IO.
        ndim: dimensionality of the indexed boxes.
        payload_size: fixed byte width of leaf payloads.
        root_page: existing root, or ``None`` for an empty tree.
    """

    def __init__(self, pool: BufferPool, ndim: int, payload_size: int,
                 root_page: int | None = None) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        if payload_size <= 0:
            raise ValueError("payload_size must be positive")
        self.pool = pool
        self.ndim = ndim
        self.payload_size = payload_size
        box_bytes = 2 * ndim * 8
        usable = pool.page_size - _HEADER.size
        self.leaf_cap = usable // (box_bytes + payload_size)
        self.internal_cap = usable // (box_bytes + _CHILD.size)
        if self.leaf_cap < 2 or self.internal_cap < 2:
            raise ValueError("page size too small for this geometry")
        self._box_pack = struct.Struct(f"<{2 * ndim}Q")
        if root_page is None:
            self.root_page = pool.allocate()
            self._write(self.root_page,
                        _Node(True, [], [], []))
        else:
            self.root_page = root_page
        self._height = None

    # -- page IO ---------------------------------------------------------------

    def _read(self, page_id: int) -> _Node:
        raw = self.pool.fetch(page_id)
        node_type, count = _HEADER.unpack_from(raw)
        offset = _HEADER.size
        boxes: list[Box] = []
        payloads: list[bytes] = []
        children: list[int] = []
        box_bytes = self._box_pack.size
        for _ in range(count):
            coords = self._box_pack.unpack_from(raw, offset)
            offset += box_bytes
            boxes.append(Box(coords[:self.ndim], coords[self.ndim:]))
            if node_type == _LEAF_TYPE:
                payloads.append(raw[offset:offset + self.payload_size])
                offset += self.payload_size
            else:
                (child,) = _CHILD.unpack_from(raw, offset)
                offset += _CHILD.size
                children.append(child)
        return _Node(node_type == _LEAF_TYPE, boxes, payloads, children)

    def _write(self, page_id: int, node: _Node) -> None:
        parts = [_HEADER.pack(_LEAF_TYPE if node.is_leaf else _INTERNAL_TYPE,
                              len(node.boxes))]
        for idx, box in enumerate(node.boxes):
            parts.append(self._box_pack.pack(*box.lo, *box.hi))
            if node.is_leaf:
                parts.append(node.payloads[idx])
            else:
                parts.append(_CHILD.pack(node.children[idx]))
        raw = b"".join(parts)
        if len(raw) > self.pool.page_size:
            raise ValueError("node overflows page")
        self.pool.write(page_id, raw.ljust(self.pool.page_size, b"\x00"))

    # -- insertion ---------------------------------------------------------------

    def insert(self, box: Box, payload: bytes) -> None:
        """Insert one (box, payload) pair."""
        if box.ndim != self.ndim:
            raise ValueError(f"box has {box.ndim} dims, tree has {self.ndim}")
        if len(payload) != self.payload_size:
            raise ValueError(f"payload must be {self.payload_size} bytes")
        split = self._insert(self.root_page, box, payload)
        if split is not None:
            (box_a, page_a), (box_b, page_b) = split
            root = _Node(False, [box_a, box_b], [], [page_a, page_b])
            self.root_page = self.pool.allocate()
            self._write(self.root_page, root)

    def _insert(self, page_id: int, box: Box, payload: bytes
                ) -> tuple[tuple[Box, int], tuple[Box, int]] | None:
        """Recursive insert; returns two (mbr, page) halves on split."""
        node = self._read(page_id)
        if node.is_leaf:
            node.boxes.append(box)
            node.payloads.append(payload)
            if len(node.boxes) <= self.leaf_cap:
                self._write(page_id, node)
                return None
            return self._split(page_id, node)
        child_idx = self._choose_subtree(node, box)
        split = self._insert(node.children[child_idx], box, payload)
        if split is None:
            node.boxes[child_idx] = node.boxes[child_idx].union(box)
            self._write(page_id, node)
            return None
        (box_a, page_a), (box_b, page_b) = split
        node.boxes[child_idx] = box_a
        node.children[child_idx] = page_a
        node.boxes.append(box_b)
        node.children.append(page_b)
        if len(node.boxes) <= self.internal_cap:
            self._write(page_id, node)
            return None
        return self._split(page_id, node)

    def _choose_subtree(self, node: _Node, box: Box) -> int:
        """Least-enlargement child; ties broken by smaller volume."""
        best_idx = 0
        best = None
        for idx, child_box in enumerate(node.boxes):
            cost = (child_box.enlargement(box), child_box.volume())
            if best is None or cost < best:
                best = cost
                best_idx = idx
        return best_idx

    def _split(self, page_id: int, node: _Node
               ) -> tuple[tuple[Box, int], tuple[Box, int]]:
        """Guttman quadratic split of an overflowing node (in place + new)."""
        seed_a, seed_b = self._pick_seeds(node.boxes)
        groups: tuple[list[int], list[int]] = ([seed_a], [seed_b])
        mbrs = [node.boxes[seed_a], node.boxes[seed_b]]
        rest = [i for i in range(len(node.boxes)) if i not in (seed_a, seed_b)]
        cap = self.leaf_cap if node.is_leaf else self.internal_cap
        min_fill = max(1, cap * 2 // 5)
        while rest:
            # Force assignment if a group must take everything left.
            for g in (0, 1):
                if len(groups[g]) + len(rest) == min_fill:
                    groups[g].extend(rest)
                    for i in rest:
                        mbrs[g] = mbrs[g].union(node.boxes[i])
                    rest = []
                    break
            if not rest:
                break
            pick, group = self._pick_next(node.boxes, rest, mbrs)
            groups[group].append(pick)
            mbrs[group] = mbrs[group].union(node.boxes[pick])
            rest.remove(pick)
        node_a = self._subnode(node, groups[0])
        node_b = self._subnode(node, groups[1])
        page_b = self.pool.allocate()
        self._write(page_id, node_a)
        self._write(page_b, node_b)
        return (node_a.mbr(), page_id), (node_b.mbr(), page_b)

    @staticmethod
    def _pick_seeds(boxes: list[Box]) -> tuple[int, int]:
        worst = None
        pair = (0, 1)
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = (boxes[i].union(boxes[j]).volume()
                         - boxes[i].volume() - boxes[j].volume())
                if worst is None or waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(boxes: list[Box], rest: list[int],
                   mbrs: list[Box]) -> tuple[int, int]:
        best_pick = rest[0]
        best_diff = -1
        for i in rest:
            d0 = mbrs[0].enlargement(boxes[i])
            d1 = mbrs[1].enlargement(boxes[i])
            diff = abs(d0 - d1)
            if diff > best_diff:
                best_diff = diff
                best_pick = i
        d0 = mbrs[0].enlargement(boxes[best_pick])
        d1 = mbrs[1].enlargement(boxes[best_pick])
        return best_pick, 0 if d0 <= d1 else 1

    def _subnode(self, node: _Node, indices: list[int]) -> _Node:
        if node.is_leaf:
            return _Node(True, [node.boxes[i] for i in indices],
                         [node.payloads[i] for i in indices], [])
        return _Node(False, [node.boxes[i] for i in indices], [],
                     [node.children[i] for i in indices])

    # -- search ---------------------------------------------------------------

    def search(self, box: Box) -> list[tuple[Box, bytes]]:
        """All (box, payload) leaf entries intersecting ``box``."""
        return list(self.iter_search(box))

    def iter_search(self, box: Box) -> Iterator[tuple[Box, bytes]]:
        stack = [self.root_page]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                for entry_box, payload in zip(node.boxes, node.payloads,
                                              strict=True):
                    if entry_box.intersects(box):
                        yield entry_box, payload
            else:
                for entry_box, child in zip(node.boxes, node.children,
                                            strict=True):
                    if entry_box.intersects(box):
                        stack.append(child)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_search(
            Box((0,) * self.ndim, ((1 << 64) - 1,) * self.ndim)))

    # -- deletion (Guttman delete with reinsertion) --------------------------------

    def delete(self, box: Box, payload: bytes) -> bool:
        """Delete one exactly matching (box, payload) leaf entry."""
        found = self._delete(self.root_page, box, payload, orphans := [])
        if not found:
            return False
        root = self._read(self.root_page)
        if not root.is_leaf and len(root.children) == 1:
            old = self.root_page
            self.root_page = root.children[0]
            self.pool.free(old)
        for orphan_box, orphan_payload in orphans:
            self.insert(orphan_box, orphan_payload)
        return True

    def _delete(self, page_id: int, box: Box, payload: bytes,
                orphans: list[tuple[Box, bytes]]) -> bool:
        node = self._read(page_id)
        if node.is_leaf:
            for idx, (entry_box, entry_payload) in enumerate(
                    zip(node.boxes, node.payloads, strict=True)):
                if entry_box == box and entry_payload == payload:
                    del node.boxes[idx]
                    del node.payloads[idx]
                    self._write(page_id, node)
                    return True
            return False
        for idx, (entry_box, child) in enumerate(
                zip(node.boxes, node.children, strict=True)):
            if not entry_box.intersects(box):
                continue
            if not self._delete(child, box, payload, orphans):
                continue
            child_node = self._read(child)
            min_fill = max(1, (self.leaf_cap if child_node.is_leaf
                               else self.internal_cap) * 2 // 5)
            if len(child_node.boxes) < min_fill:
                # Condense: orphan the child's entries for reinsertion.
                self._collect_entries(child, orphans)
                del node.boxes[idx]
                del node.children[idx]
            else:
                node.boxes[idx] = child_node.mbr()
            self._write(page_id, node)
            return True
        return False

    def _collect_entries(self, page_id: int,
                         orphans: list[tuple[Box, bytes]]) -> None:
        node = self._read(page_id)
        if node.is_leaf:
            orphans.extend(zip(node.boxes, node.payloads, strict=True))
        else:
            for child in node.children:
                self._collect_entries(child, orphans)
        self.pool.free(page_id)

    # -- diagnostics -------------------------------------------------------------

    def node_count(self) -> int:
        return self._count(self.root_page)

    def _count(self, page_id: int) -> int:
        node = self._read(page_id)
        if node.is_leaf:
            return 1
        return 1 + sum(self._count(child) for child in node.children)

    def check_invariants(self) -> None:
        """Assert MBR containment and fill invariants (tests only)."""
        self._check(self.root_page, None, is_root=True)

    def _check(self, page_id: int, outer: Box | None, is_root: bool) -> None:
        node = self._read(page_id)
        if node.boxes and outer is not None:
            assert outer.contains(node.mbr()), "child MBR escapes parent"
        if node.is_leaf:
            return
        assert node.children, "empty internal node"
        for box, child in zip(node.boxes, node.children, strict=True):
            self._check(child, box, is_root=False)
