"""N-dimensional integer boxes for the R-tree family.

Boxes are closed on both ends in every dimension.  The 2-D instances index
spatial rectangles; the 3-D instances add the time axis for the 3D R-tree
baseline and MV3R's auxiliary tree.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Box:
    """Closed axis-aligned box: ``lo[i] <= hi[i]`` for every dimension."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi dimensionality mismatch")
        if any(l > h for l, h in zip(self.lo, self.hi, strict=True)):
            raise ValueError(f"empty box {self.lo}..{self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @classmethod
    def point(cls, *coords: int) -> "Box":
        """Degenerate box covering a single point."""
        return cls(tuple(coords), tuple(coords))

    def intersects(self, other: "Box") -> bool:
        return all(a_lo <= b_hi and b_lo <= a_hi
                   for a_lo, a_hi, b_lo, b_hi
                   in zip(self.lo, self.hi, other.lo, other.hi,
                          strict=True))

    def contains(self, other: "Box") -> bool:
        return all(a_lo <= b_lo and b_hi <= a_hi
                   for a_lo, a_hi, b_lo, b_hi
                   in zip(self.lo, self.hi, other.lo, other.hi,
                          strict=True))

    def union(self, other: "Box") -> "Box":
        return Box(tuple(min(a, b) for a, b
                         in zip(self.lo, other.lo, strict=True)),
                   tuple(max(a, b) for a, b
                         in zip(self.hi, other.hi, strict=True)))

    def volume(self) -> int:
        """Closed-box volume (side lengths measured as ``hi - lo``)."""
        result = 1
        for l, h in zip(self.lo, self.hi, strict=True):
            result *= h - l
        return result

    def margin(self) -> int:
        """Sum of side lengths."""
        return sum(h - l for l, h in zip(self.lo, self.hi, strict=True))

    def enlargement(self, other: "Box") -> int:
        """Volume increase needed to absorb ``other``."""
        return self.union(other).volume() - self.volume()


def union_all(boxes: list[Box]) -> Box:
    """MBR of a non-empty list of boxes."""
    if not boxes:
        raise ValueError("cannot take the MBR of zero boxes")
    result = boxes[0]
    for box in boxes[1:]:
        result = result.union(box)
    return result
