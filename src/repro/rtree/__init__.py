"""Disk R-tree substrate for the paper's baseline indexes."""

from .geometry import Box, union_all
from .tree import RTree

__all__ = ["Box", "RTree", "union_all"]
