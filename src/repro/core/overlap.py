"""Temporal overlap classification (paper Section IV-B(a), Theorems 1–3).

Given a query time interval ``[tl, th]`` (a timeslice is ``tl == th``), this
module computes, for every s-partition column that can contain qualifying
entries, the contiguous band of overlapping d-partitions and the sub-band
whose cells overlap *fully* — entries in fully overlapping cells are
guaranteed to qualify and skip the refinement step.

The classification is *exact*: instead of transliterating the paper's
continuous-time inequalities we invert the integer partition formulas
(:meth:`SWSTConfig.s_cell_bounds` / :meth:`d_cell_bounds`) and derive the
full/partial conditions from first principles.  The property-based test
suite checks both that the result agrees with brute-force enumeration of
representable ``(s, d)`` pairs and that it matches the paper's merge
algorithm (``repro.core.merge``) away from window edges.

An entry ``(s, d)`` qualifies for interval query ``[tl, th]`` under queriable
period ``[q_lo, q_hi]`` iff::

    q_lo <= s <= min(q_hi, th)   and   s + d > tl

(current entries have ``d = ∞`` and satisfy the second condition whenever
the first holds).  The classification accounts for *physically present but
no longer queriable* entries (starts below ``q_lo`` that have expired but
whose tree has not been dropped yet): a column containing such starts can
never be classified full.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SWSTConfig


@dataclass(frozen=True)
class ColumnOverlap:
    """Overlap classification of one s-partition column.

    Attributes:
        s_part: modulo-space s-partition index in ``[0, 2·Sp)``.
        tree: which of the two B+ trees holds this column (0 or 1).
        s_abs_lo: smallest absolute start timestamp in the column that can
            qualify (clipped to the queriable period).
        s_abs_hi: largest qualifying absolute start timestamp.
        d_first: first overlapping d-partition (inclusive).  The overlapping
            band always extends to ``Dp - 1`` because longer durations only
            increase overlap.
        d_full: first *fully* overlapping d-partition, or ``Dp`` when no
            cell of the column overlaps fully.
    """

    s_part: int
    tree: int
    s_abs_lo: int
    s_abs_hi: int
    d_first: int
    d_full: int

    def overlap_kind(self, d_part: int) -> str:
        """'none' / 'partial' / 'full' classification of one temporal cell."""
        if d_part < self.d_first:
            return "none"
        return "full" if d_part >= self.d_full else "partial"


def classify_interval(config: SWSTConfig, now: int, t_lo: int, t_hi: int,
                      window: int | None = None) -> list[ColumnOverlap]:
    """Classify temporal cells for interval query ``[t_lo, t_hi]``.

    Args:
        config: index configuration.
        now: current stream time τ (the newest start timestamp seen).
        t_lo, t_hi: closed query time interval.
        window: optional logical window size ``W' <= W``.

    Returns:
        Column classifications ordered by absolute start time (hence sorted
        and disjoint in key space), at most one per modulo s-partition.
    """
    if t_lo > t_hi:
        raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
    q_lo, q_hi = config.queriable_period(now, window)
    s_hi_eff = min(q_hi, t_hi)
    if s_hi_eff < q_lo:
        return []
    cycle_len = 2 * config.w_max
    columns: list[ColumnOverlap] = []
    first_cycle = q_lo // cycle_len
    last_cycle = s_hi_eff // cycle_len
    for cycle in range(first_cycle, last_cycle + 1):
        base = cycle * cycle_len
        m_lo = _s_part_at(config, max(q_lo - base, 0))
        m_hi = _s_part_at(config, min(s_hi_eff - base, cycle_len - 1))
        for m in range(m_lo, m_hi + 1):
            column = _classify_column(config, base, m, q_lo, s_hi_eff, t_lo)
            if column is not None:
                columns.append(column)
    return columns


def classify_timeslice(config: SWSTConfig, now: int, t: int,
                       window: int | None = None) -> list[ColumnOverlap]:
    """Classify temporal cells for timeslice query ``t`` (= interval [t, t])."""
    return classify_interval(config, now, t, t, window)


def _s_part_at(config: SWSTConfig, s_mod: int) -> int:
    """s-partition index of a modulo-space start time (no re-reduction)."""
    return (s_mod * config.sp) // config.w_max


def _classify_column(config: SWSTConfig, base: int, m: int, q_lo: int,
                     s_hi_eff: int, t_lo: int) -> ColumnOverlap | None:
    """Classify column ``m`` of the cycle starting at absolute time ``base``."""
    s1_mod, s2_mod = config.s_cell_bounds(m)
    s1 = base + s1_mod          # smallest physical start in the column
    s2 = base + s2_mod          # exclusive upper bound of physical starts
    a_lo = max(s1, q_lo)        # clipped qualifying start bounds
    a_hi = min(s2 - 1, s_hi_eff)
    if a_lo > a_hi:
        return None
    dp = config.dp
    d_first = _first_overlapping_d(config, a_hi, t_lo)
    if d_first >= dp:
        return None
    # A column can only contain full cells when every physically present
    # start is both queriable (s1 >= q_lo) and within the query's start
    # bound (s2 - 1 <= s_hi_eff).
    d_full = (_first_full_d(config, s1, t_lo)
              if s1 >= q_lo and s2 - 1 <= s_hi_eff else dp)
    return ColumnOverlap(s_part=m, tree=0 if m < config.sp else 1,
                         s_abs_lo=a_lo, s_abs_hi=a_hi,
                         d_first=max(d_first, 0),
                         d_full=max(d_full, d_first))


def _first_overlapping_d(config: SWSTConfig, a_hi: int, t_lo: int) -> int:
    """Smallest d-partition where some qualifying (s, d) pair can exist.

    A cell (column, n) can contain a qualifying entry iff its latest
    possible end exceeds ``t_lo``: ``a_hi + (D2(n) - 1) > t_lo``.  The top
    d-partition additionally hosts current entries (d = ∞), which always
    satisfy the end condition.
    """
    dp = config.dp
    for n in range(dp):
        if n == dp - 1:
            return n  # current entries (d = ∞) always reach past t_lo
        _, d2 = config.d_cell_bounds(n)
        if a_hi + d2 - 1 > t_lo:
            return n
    return dp  # pragma: no cover - top partition always overlaps


def _first_full_d(config: SWSTConfig, s1: int, t_lo: int) -> int:
    """Smallest d-partition where *every* (s, d) pair qualifies.

    Requires the earliest possible end to exceed ``t_lo``:
    ``s1 + D1(n) > t_lo``.  Monotone in ``n`` because D1 grows with n.
    """
    dp = config.dp
    for n in range(dp):
        d1, _ = config.d_cell_bounds(n)
        if s1 + d1 > t_lo:
            return n
    return dp
