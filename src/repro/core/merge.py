"""The paper's interval-query merge algorithm (Section IV-B(a)).

For an interval query ``[tl, th]`` the paper computes overlapping-region
triplets ``(so, do_p, do_f)`` for the two endpoint timeslices separately
(Theorems 1 and 2), merges the two sorted column lists with three rules,
and finally upgrades partial cells that Theorem 3 proves full.

``repro.core.overlap`` computes the same classification directly from the
qualification predicate; this module exists to implement the published
algorithm faithfully and is tested for equivalence with the direct
classifier.  One correction is applied: the paper's rule 2 marks every
column "only in th's region or between the regions" as fully overlapping,
but the column *containing* ``th`` can hold starts greater than ``th`` and
must keep its endpoint classification (the paper's own Fig. 4(b) classifies
that column partial).  Rule 2 is therefore applied only to columns whose
entire start range lies within ``[tl+1, th]``; the Theorem-3 refinement then
restores any full cells this conservatism missed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SWSTConfig
from .overlap import ColumnOverlap, _s_part_at


@dataclass(frozen=True)
class _Column:
    """Physical bounds of one enumerated s-partition column."""

    m: int
    s1: int       # first physical start (absolute)
    s2: int       # exclusive upper bound of physical starts
    a_lo: int     # clipped qualifying bounds
    a_hi: int
    tree: int


def _enumerate_columns(config: SWSTConfig, q_lo: int,
                       s_hi_eff: int) -> list[_Column]:
    """Columns whose clipped start range is non-empty, in absolute order."""
    cycle_len = 2 * config.w_max
    columns: list[_Column] = []
    for cycle in range(q_lo // cycle_len, s_hi_eff // cycle_len + 1):
        base = cycle * cycle_len
        m_lo = _s_part_at(config, max(q_lo - base, 0))
        m_hi = _s_part_at(config, min(s_hi_eff - base, cycle_len - 1))
        for m in range(m_lo, m_hi + 1):
            s1_mod, s2_mod = config.s_cell_bounds(m)
            s1, s2 = base + s1_mod, base + s2_mod
            a_lo, a_hi = max(s1, q_lo), min(s2 - 1, s_hi_eff)
            if a_lo <= a_hi:
                columns.append(_Column(m=m, s1=s1, s2=s2, a_lo=a_lo,
                                       a_hi=a_hi,
                                       tree=0 if m < config.sp else 1))
    return columns


def _timeslice_triplet(config: SWSTConfig, col: _Column,
                       t: int) -> tuple[int, int] | None:
    """(do_p, do_f) for timeslice ``t`` on one column, or None if disjoint.

    Theorem 1 (exact integer form): a cell is full iff every entry
    satisfies ``s <= t < s + d``, i.e. ``S2 - 1 <= t`` and ``S1 + D1 > t``.
    Theorem 2 falls out of the same arithmetic: when the start and end
    ranges overlap, no ``n`` satisfies both conditions.
    """
    if col.s1 > t:
        return None  # every start is after t
    dp = config.dp
    do_p = dp
    for n in range(dp):
        if n == dp - 1:
            do_p = min(do_p, n)  # current entries always reach t
            break
        _, d2 = config.d_cell_bounds(n)
        if min(col.s2 - 1, t) + d2 - 1 > t:
            do_p = min(do_p, n)
            break
    if do_p == dp:
        return None
    do_f = dp
    if col.s2 - 1 <= t:
        for n in range(do_p, dp):
            d1, _ = config.d_cell_bounds(n)
            if col.s1 + d1 > t:
                do_f = n
                break
    return do_p, do_f


def classify_interval_merge(config: SWSTConfig, now: int, t_lo: int,
                            t_hi: int,
                            window: int | None = None) -> list[ColumnOverlap]:
    """Merge-based interval classification; equivalent to
    :func:`repro.core.overlap.classify_interval`."""
    if t_lo > t_hi:
        raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
    q_lo, q_hi = config.queriable_period(now, window)
    s_hi_eff = min(q_hi, t_hi)
    if s_hi_eff < q_lo:
        return []
    columns = _enumerate_columns(config, q_lo, s_hi_eff)
    dp = config.dp
    results: list[ColumnOverlap] = []
    for col in columns:
        lo_triplet = _timeslice_triplet(config, col, t_lo)
        hi_triplet = _timeslice_triplet(config, col, t_hi)
        if lo_triplet is not None:
            # Rule 1: the merged column region equals tl's region.
            do_p, do_f = lo_triplet
        elif hi_triplet is not None or col.s1 > t_lo:
            if col.s2 - 1 <= t_hi and col.s1 > t_lo:
                # Rule 2 (corrected): the whole column's starts lie in
                # (tl, th]; every entry has s <= th and s + d > s > tl.
                do_p, do_f = 0, 0
            elif hi_triplet is not None:
                do_p, do_f = hi_triplet
            else:
                continue
        else:
            # Rule 3: no overlap for this column.
            continue
        # Full classification requires every physically present start to be
        # queriable and within the query's start bound (window clipping).
        if not (col.s1 >= q_lo and col.s2 - 1 <= s_hi_eff):
            do_f = dp
        else:
            # Theorem 3 refinement: upgrade partial cells that are actually
            # full for the whole interval: S2-1 <= th and S1 + D1 > tl.
            if col.s2 - 1 <= t_hi:
                for n in range(do_p, do_f):
                    d1, _ = config.d_cell_bounds(n)
                    if col.s1 + d1 > t_lo:
                        do_f = n
                        break
        results.append(ColumnOverlap(s_part=col.m, tree=col.tree,
                                     s_abs_lo=col.a_lo, s_abs_hi=col.a_hi,
                                     d_first=do_p,
                                     d_full=max(do_f, do_p)))
    return results
