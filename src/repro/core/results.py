"""Query result and per-query statistics types."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator

from .records import Entry


@dataclass
class QueryStats:
    """Cost breakdown of one query.

    Attributes:
        node_accesses: logical page accesses during the query (the paper's
            headline search metric).
        spatial_cells: spatial grid cells whose temporal indexes were probed.
        columns_examined: (spatial cell, s-partition column) pairs examined.
        key_ranges: B+ tree key ranges generated after memo pruning.
        candidates: entries returned by the B+ tree searches before
            refinement.
        refined_out: candidates discarded by the refinement step.
        full_hits: candidates accepted without any predicate evaluation
            because both their temporal cell and spatial cell overlap fully.
        plan_cache_hits: queries (or batch evaluations) that reused a
            compiled query plan from the plan cache instead of
            re-deriving the temporal classification.
        degraded: True if the result was produced in degraded mode — a
            sharded query ran with ``strict=False`` and at least one
            shard failed, so the entries cover only the surviving shards.
    """

    node_accesses: int = 0
    spatial_cells: int = 0
    columns_examined: int = 0
    key_ranges: int = 0
    candidates: int = 0
    refined_out: int = 0
    full_hits: int = 0
    plan_cache_hits: int = 0
    degraded: bool = False

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats block into this one, field by field.

        Every counter is additive, so merging per-shard (or per-query)
        statistics yields the aggregate cost of the combined evaluation;
        the ``degraded`` flag is sticky (OR-merged).  Returns ``self`` so
        merges chain.
        """
        for name in _QUERY_STAT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.degraded = self.degraded or other.degraded
        return self

    def __iadd__(self, other: "QueryStats") -> "QueryStats":
        return self.merge(other)


#: Additive counter fields of :class:`QueryStats`, fixed at import time
#: (the ``degraded`` flag OR-merges instead).
_QUERY_STAT_FIELDS = tuple(f.name for f in fields(QueryStats)
                           if f.name != "degraded")


@dataclass
class QueryResult:
    """Entries matching a query plus the cost statistics of evaluating it."""

    entries: list[Entry] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def oids(self) -> set[int]:
        """Distinct object ids in the result."""
        return {entry.oid for entry in self.entries}

    def merge(self, other: "QueryResult") -> "QueryResult":
        """Append another result's entries and absorb its statistics.

        The scatter-gather engine uses this to combine per-shard results;
        entry order is concatenation order (sort before comparing results
        from differently-sharded evaluations).  Returns ``self``.
        """
        self.entries.extend(other.entries)
        self.stats.merge(other.stats)
        return self


@dataclass
class MultiQueryResult:
    """Result of a batched multi-rectangle query.

    Attributes:
        results: one :class:`QueryResult` per input rectangle, in input
            order.  Per-rectangle statistics carry that rectangle's own
            refinement counters (candidates, full hits, refined-out, key
            ranges, ...); node accesses of the shared level-wise B+ tree
            descents cannot be attributed to a single rectangle and are
            reported only on the batch-level :attr:`stats`.
        stats: aggregate statistics of the whole batch — the merge of
            every per-rectangle block plus the batch's total logical
            node accesses and plan-cache hits.
    """

    results: list[QueryResult] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)
