"""First index layer: the uniform spatial grid (paper Section III-B.1).

The spatial domain is divided into ``Xp × Yp`` uniform, non-overlapping
cells.  Query evaluation first finds the cells overlapping the query
rectangle, distinguishing *full* overlaps (every point of the cell is inside
the query — no spatial refinement needed) from *partial* ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .records import Rect


@dataclass(frozen=True)
class CellOverlap:
    """One spatial cell overlapping a query rectangle.

    Attributes:
        cx, cy: cell coordinates in the grid.
        full: True if the query rectangle covers the whole cell.
        clipped: intersection of the query rectangle with the cell — the
            ``[Sl, Sh]`` rectangle of the paper's Fig. 3, used to clip the
            Z-curve part of B+ tree key ranges.
    """

    cx: int
    cy: int
    full: bool
    clipped: Rect


class SpatialGrid:
    """Uniform partitioning of a closed rectangular domain."""

    def __init__(self, space: Rect, x_partitions: int,
                 y_partitions: int) -> None:
        if x_partitions < 1 or y_partitions < 1:
            raise ValueError("partition counts must be >= 1")
        self.space = space
        self.xp = x_partitions
        self.yp = y_partitions
        # Closed-domain extent: number of representable integer coordinates.
        self._x_extent = space.x_hi - space.x_lo + 1
        self._y_extent = space.y_hi - space.y_lo + 1

    def cell_count(self) -> int:
        return self.xp * self.yp

    def cell_of(self, x: int, y: int) -> tuple[int, int]:
        """Grid cell containing point ``(x, y)``."""
        if not self.space.contains(x, y):
            raise ValueError(f"point ({x}, {y}) outside domain {self.space}")
        cx = (x - self.space.x_lo) * self.xp // self._x_extent
        cy = (y - self.space.y_lo) * self.yp // self._y_extent
        return cx, cy

    def cell_bounds(self, cx: int, cy: int) -> Rect:
        """Closed coordinate rectangle of cell ``(cx, cy)``."""
        if not (0 <= cx < self.xp and 0 <= cy < self.yp):
            raise ValueError(f"cell ({cx}, {cy}) outside grid "
                             f"{self.xp}x{self.yp}")
        x_lo = self.space.x_lo + -(-cx * self._x_extent // self.xp)
        x_hi = self.space.x_lo + -(-(cx + 1) * self._x_extent // self.xp) - 1
        y_lo = self.space.y_lo + -(-cy * self._y_extent // self.yp)
        y_hi = self.space.y_lo + -(-(cy + 1) * self._y_extent // self.yp) - 1
        return Rect(x_lo, y_lo, x_hi, y_hi)

    def overlapping_cells(self, query: Rect) -> Iterator[CellOverlap]:
        """Yield every grid cell intersecting ``query`` with its overlap type."""
        clipped_query = query.intersection(self.space)
        if clipped_query is None:
            return
        cx_lo, cy_lo = self.cell_of(clipped_query.x_lo, clipped_query.y_lo)
        cx_hi, cy_hi = self.cell_of(clipped_query.x_hi, clipped_query.y_hi)
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bounds = self.cell_bounds(cx, cy)
                clipped = bounds.intersection(clipped_query)
                if clipped is None:  # pragma: no cover - defensive
                    continue
                yield CellOverlap(cx=cx, cy=cy,
                                  full=query.covers(bounds),
                                  clipped=clipped)
