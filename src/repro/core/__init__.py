"""SWST core: the paper's primary contribution."""

from .config import SWSTConfig
from .grid import CellOverlap, SpatialGrid
from .index import SWSTIndex
from .keys import DecodedKey, KeyCodec
from .memo import CellMemo
from .merge import classify_interval_merge
from .overlap import ColumnOverlap, classify_interval, classify_timeslice
from .records import CURRENT_DURATION, Entry, RECORD_SIZE, Rect
from .results import QueryResult, QueryStats
from .tuning import (TuningAdvice, memo_bytes_per_cell, memo_bytes_total,
                     suggest_config)

__all__ = [
    "CURRENT_DURATION",
    "CellMemo",
    "CellOverlap",
    "ColumnOverlap",
    "DecodedKey",
    "Entry",
    "KeyCodec",
    "QueryResult",
    "QueryStats",
    "RECORD_SIZE",
    "Rect",
    "SWSTConfig",
    "SWSTIndex",
    "SpatialGrid",
    "TuningAdvice",
    "classify_interval",
    "classify_interval_merge",
    "classify_timeslice",
    "memo_bytes_per_cell",
    "memo_bytes_total",
    "suggest_config",
]
