"""SWST core: the paper's primary contribution."""

from .config import SWSTConfig
from .grid import CellOverlap, SpatialGrid
from .index import SWSTIndex
from .keys import DecodedKey, KeyCodec
from .memo import CellMemo
from .merge import classify_interval_merge
from .overlap import ColumnOverlap, classify_interval, classify_timeslice
from .plan import PlanCache, PlanEntry, QueryPlan, build_query_plan
from .records import CURRENT_DURATION, Entry, RECORD_SIZE, Rect
from .results import MultiQueryResult, QueryResult, QueryStats
from .tuning import (TuningAdvice, memo_bytes_per_cell, memo_bytes_total,
                     suggest_config)

__all__ = [
    "CURRENT_DURATION",
    "CellMemo",
    "CellOverlap",
    "ColumnOverlap",
    "DecodedKey",
    "Entry",
    "KeyCodec",
    "MultiQueryResult",
    "PlanCache",
    "PlanEntry",
    "QueryPlan",
    "QueryResult",
    "QueryStats",
    "RECORD_SIZE",
    "Rect",
    "SWSTConfig",
    "SWSTIndex",
    "SpatialGrid",
    "TuningAdvice",
    "build_query_plan",
    "classify_interval",
    "classify_interval_merge",
    "classify_timeslice",
    "memo_bytes_per_cell",
    "memo_bytes_total",
    "suggest_config",
]
