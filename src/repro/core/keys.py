"""B+ tree key codec (paper Section III-B.2).

A key is the fixed-width bit concatenation::

    KEY(s, d, x, y) = [s-partition(s)]₂ ⊕ [d-partition(d)]₂ ⊕ [zc(x, y)]₂

ordered so that (a) every entry of one s-partition column sits in one
contiguous key band — the band that is dropped wholesale when the window
slides — (b) within a column, entries are ordered by d-partition, and (c)
within one temporal cell, by Z-curve spatial proximity.  Because both the
modulo-reduced start time and the duration are bounded, key width never
grows with stream time.

``spatial_keys=False`` reproduces the ablation of Section V-D.1: the Z bits
are omitted and the spatial pruning inside a cell is lost.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Iterable, Sequence

from ..sfc.zcurve import zc_encode, zc_encode_many
from .config import SWSTConfig
from .records import Rect


@dataclass(frozen=True)
class DecodedKey:
    """The three fields of a decoded SWST key."""

    s_part: int
    d_part: int
    z_value: int


class KeyCodec:
    """Encode/decode SWST composite keys for one configuration."""

    def __init__(self, config: SWSTConfig) -> None:
        self.config = config
        # s-partition spans both modulo windows: [0, 2·Sp).
        self.s_bits = max(1, (2 * config.sp - 1).bit_length())
        self.d_bits = max(1, (config.dp - 1).bit_length())
        self.zc_order = config.zc_order
        self.z_bits = 2 * self.zc_order if config.spatial_keys else 0
        self.key_bits = self.s_bits + self.d_bits + self.z_bits
        if self.key_bits > 128:
            raise ValueError(f"key of {self.key_bits} bits exceeds the "
                             f"128-bit B+ tree key width")

    # -- scalar encode/decode --------------------------------------------------

    def encode(self, s: int, d: int, x: int, y: int) -> int:
        """Key of an entry with start ``s``, duration ``d`` (``ND`` allowed),
        location ``(x, y)``."""
        return self.pack(self.config.s_partition(s),
                         self.config.d_partition(d),
                         x, y)

    def pack(self, s_part: int, d_part: int, x: int, y: int) -> int:
        """Key from explicit partition indices and a location."""
        key = (s_part << self.d_bits) | d_part
        if self.z_bits:
            key = (key << self.z_bits) | zc_encode(x, y, self.zc_order)
        return key

    def decode(self, key: int) -> DecodedKey:
        """Split a key back into its fields."""
        z_value = key & ((1 << self.z_bits) - 1) if self.z_bits else 0
        rest = key >> self.z_bits
        d_part = rest & ((1 << self.d_bits) - 1)
        s_part = rest >> self.d_bits
        return DecodedKey(s_part=s_part, d_part=d_part, z_value=z_value)

    # -- batched encode/decode ---------------------------------------------------

    def encode_many(self,
                    items: Iterable[tuple[int, int, int, int]]) -> list[int]:
        """Keys of many ``(s, d, x, y)`` tuples in one pass."""
        s_partition = self.config.s_partition
        d_partition = self.config.d_partition
        d_bits, z_bits = self.d_bits, self.z_bits
        if not z_bits:
            return [(s_partition(s) << d_bits) | d_partition(d)
                    for s, d, _x, _y in items]
        batch = list(items)
        zs = zc_encode_many(((x, y) for _s, _d, x, y in batch),
                            self.zc_order)
        return [(((s_partition(s) << d_bits) | d_partition(d)) << z_bits) | z
                for (s, d, _x, _y), z in zip(batch, zs, strict=True)]

    def split_many(self, keys: Sequence[int]) -> list[tuple[int, int]]:
        """``(s_part, d_part)`` of many keys in one pass.

        The refinement step classifies every candidate by its temporal
        cell but never needs the Z bits, so this skips materialising
        :class:`DecodedKey` objects.
        """
        z_bits, d_bits = self.z_bits, self.d_bits
        d_mask = (1 << d_bits) - 1
        return [(key >> z_bits >> d_bits, (key >> z_bits) & d_mask)
                for key in keys]

    # -- range generation --------------------------------------------------------

    def column_range(self, s_part: int, d_lo: int, d_hi: int,
                     clipped: Rect) -> tuple[int, int]:
        """Key range covering d-partitions ``[d_lo, d_hi]`` of one s-partition
        column, spatially clipped to ``clipped`` (paper step IV-B(b)).

        By the Z-curve corner property, using ``zc`` of the lower-left corner
        in the low key and of the upper-right corner in the high key covers
        every point of the clipped rectangle.
        """
        if d_lo > d_hi:
            raise ValueError(f"empty d-partition range [{d_lo}, {d_hi}]")
        z_lo, z_hi = self.rect_z(clipped)
        return self.column_range_z(s_part, d_lo, d_hi, z_lo, z_hi)

    def rect_z(self, clipped: Rect) -> tuple[int, int]:
        """Z-values of a rectangle's lower-left and upper-right corners.

        The query pipeline encodes these once per spatial cell and
        reuses them for every s-partition column of both trees (the
        clipped rectangle is a per-cell constant).
        """
        if not self.z_bits:
            return 0, 0
        return (zc_encode(clipped.x_lo, clipped.y_lo, self.zc_order),
                zc_encode(clipped.x_hi, clipped.y_hi, self.zc_order))

    def column_range_z(self, s_part: int, d_lo: int, d_hi: int,
                       z_lo: int, z_hi: int) -> tuple[int, int]:
        """:meth:`column_range` with the corner Z-values precomputed."""
        d_bits, z_bits = self.d_bits, self.z_bits
        return (((s_part << d_bits | d_lo) << z_bits) | z_lo,
                ((s_part << d_bits | d_hi) << z_bits) | z_hi)
