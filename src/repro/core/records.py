"""Data model: discretely moving point entries (paper Section III-A).

An entry ``<oid, x, y, s, d>`` says object ``oid`` sat at integer location
``(x, y)`` during the valid time ``[s, s + d)``.  A *current entry* is one
whose end timestamp is not yet known (``d is None``); the index stores it
under the sentinel duration ``ND = Dmax + 1`` until the object's next
position report fixes the real duration.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Protocol

#: On-disk duration sentinel marking a current entry inside a record payload.
CURRENT_DURATION = 0


class ReportLike(Protocol):
    """Anything the batched ingestion paths accept as a position report.

    Read-only properties so both plain and frozen dataclasses (e.g.
    :class:`repro.datagen.gstd.Report`) conform structurally.
    """

    @property
    def oid(self) -> int: ...

    @property
    def x(self) -> int: ...

    @property
    def y(self) -> int: ...

    @property
    def t(self) -> int: ...

_RECORD = struct.Struct("<QIIQQ")  # oid, x, y, s, d

#: Fixed byte width of a serialised entry (B+ tree value payload).
RECORD_SIZE = _RECORD.size


@dataclass(frozen=True, slots=True)
class Entry:
    """One spatio-temporal record.

    Attributes:
        oid: object identifier.
        x: integer x coordinate.
        y: integer y coordinate.
        s: start timestamp (absolute, not modulo-reduced).
        d: valid duration, or ``None`` for a current entry whose end is
            unknown.
    """

    oid: int
    x: int
    y: int
    s: int
    d: int | None

    @property
    def is_current(self) -> bool:
        """True if this entry's final duration is not yet known."""
        return self.d is None

    @property
    def end(self) -> float:
        """Exclusive end timestamp; ``inf`` for current entries."""
        return float("inf") if self.d is None else self.s + self.d

    def valid_at(self, t: int) -> bool:
        """True if the entry's valid time ``[s, s + d)`` contains ``t``."""
        return self.s <= t < self.end

    def valid_during(self, t_lo: int, t_hi: int) -> bool:
        """True if the valid time overlaps the closed interval [t_lo, t_hi]."""
        return self.s <= t_hi and self.end > t_lo

    def pack(self) -> bytes:
        """Serialise to the fixed :data:`RECORD_SIZE`-byte payload."""
        d_raw = CURRENT_DURATION if self.d is None else self.d
        return _RECORD.pack(self.oid, self.x, self.y, self.s, d_raw)

    @classmethod
    def unpack(cls, raw: bytes) -> "Entry":
        """Inverse of :meth:`pack`."""
        oid, x, y, s, d_raw = _RECORD.unpack(raw)
        return cls(oid=oid, x=x, y=y, s=s,
                   d=None if d_raw == CURRENT_DURATION else d_raw)


@dataclass(frozen=True, slots=True)
class Rect:
    """Closed axis-aligned rectangle (the spatial area of a query)."""

    x_lo: int
    y_lo: int
    x_hi: int
    y_hi: int

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"empty rectangle {self}")

    def contains(self, x: int, y: int) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def intersects(self, other: "Rect") -> bool:
        return (self.x_lo <= other.x_hi and other.x_lo <= self.x_hi
                and self.y_lo <= other.y_hi and other.y_lo <= self.y_hi)

    def intersection(self, other: "Rect") -> "Rect | None":
        x_lo = max(self.x_lo, other.x_lo)
        y_lo = max(self.y_lo, other.y_lo)
        x_hi = min(self.x_hi, other.x_hi)
        y_hi = min(self.y_hi, other.y_hi)
        if x_lo > x_hi or y_lo > y_hi:
            return None
        return Rect(x_lo, y_lo, x_hi, y_hi)

    def covers(self, other: "Rect") -> bool:
        return (self.x_lo <= other.x_lo and other.x_hi <= self.x_hi
                and self.y_lo <= other.y_lo and other.y_hi <= self.y_hi)

    def area(self) -> int:
        """Closed-rectangle cell count."""
        return (self.x_hi - self.x_lo + 1) * (self.y_hi - self.y_lo + 1)
