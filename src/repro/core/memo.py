"""The *isPresent* memo (paper Section III-B.3).

For every temporal cell ``(s-partition, d-partition)`` of a spatial cell,
the memo keeps the entry count and the minimum bounding rectangle of the
entry locations.  During query step IV-B(b) it prunes temporal cells that
are empty or whose MBR misses the query's spatial area — the optimisation
that makes long-duration entries cheap (paper Fig. 11).

The memo is only maintainable because SWST bounds *both* temporal
dimensions (modulo-reduced start time, duration); with the conventional
(t_start, t_end) representation neither axis can be gridded.

Implementation note: the paper stores a dense ``2·16·Sp·Dp``-byte array per
spatial cell; we store the same information sparsely (dict keyed by
temporal cell), which is behaviour-identical and lighter when data is
skewed.  On deletion the count is decremented and the MBR is cleared when
the cell empties; a partially emptied MBR is not shrunk (conservative: the
memo may under-prune, never over-prune).
"""

from __future__ import annotations

from .records import Rect


class CellMemo:
    """isPresent memo for one spatial cell."""

    __slots__ = ("_cells", "_generation")

    def __init__(self) -> None:
        # (s_part, d_part) -> [count, x_lo, y_lo, x_hi, y_hi]
        self._cells: dict[tuple[int, int], list[int]] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every mutation.

        Cached artifacts derived from the memo (the plan cache's
        memo-pruned key ranges) fence themselves on this counter: a
        generation mismatch means the pruning decision must be redone.
        """
        return self._generation

    def add(self, s_part: int, d_part: int, x: int, y: int) -> None:
        """Record one entry at ``(x, y)`` in temporal cell (s_part, d_part)."""
        self._generation += 1
        cell = self._cells.get((s_part, d_part))
        if cell is None:
            self._cells[(s_part, d_part)] = [1, x, y, x, y]
            return
        cell[0] += 1
        if x < cell[1]:
            cell[1] = x
        if y < cell[2]:
            cell[2] = y
        if x > cell[3]:
            cell[3] = x
        if y > cell[4]:
            cell[4] = y

    def remove(self, s_part: int, d_part: int) -> None:
        """Remove one entry from a temporal cell."""
        key = (s_part, d_part)
        cell = self._cells.get(key)
        if cell is None:
            raise KeyError(f"temporal cell {key} is already empty")
        self._generation += 1
        cell[0] -= 1
        if cell[0] == 0:
            del self._cells[key]

    def count(self, s_part: int, d_part: int) -> int:
        cell = self._cells.get((s_part, d_part))
        return cell[0] if cell else 0

    def mbr(self, s_part: int, d_part: int) -> Rect | None:
        """MBR of the temporal cell's entries, or None if the cell is empty."""
        cell = self._cells.get((s_part, d_part))
        if cell is None:
            return None
        return Rect(cell[1], cell[2], cell[3], cell[4])

    def overlaps(self, s_part: int, d_part: int, area: Rect) -> bool:
        """True if the cell is non-empty and its MBR intersects ``area``."""
        cell = self._cells.get((s_part, d_part))
        if cell is None:
            return False
        return (cell[1] <= area.x_hi and area.x_lo <= cell[3]
                and cell[2] <= area.y_hi and area.y_lo <= cell[4])

    def reset_partitions(self, s_lo: int, s_hi: int) -> None:
        """Clear every temporal cell with s-partition in ``[s_lo, s_hi)``.

        Called when the corresponding B+ tree is dropped at a window
        boundary.
        """
        stale = [key for key in self._cells if s_lo <= key[0] < s_hi]
        if stale:
            self._generation += 1
        for key in stale:
            del self._cells[key]

    def total_entries(self) -> int:
        """Total entry count across all temporal cells."""
        return sum(cell[0] for cell in self._cells.values())

    def total_in_partitions(self, s_lo: int, s_hi: int) -> int:
        """Entry count over s-partitions in ``[s_lo, s_hi)``."""
        return sum(cell[0] for key, cell in self._cells.items()
                   if s_lo <= key[0] < s_hi)

    def nonempty_cells(self) -> int:
        return len(self._cells)
