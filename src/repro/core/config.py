"""SWST configuration: the paper's Table I notation as a dataclass.

=========  ==================================================================
Notation   Meaning
=========  ==================================================================
``W``      sliding window size (time units)
``L``      slide (step with which the window moves); also the s-axis
           interval size Δ in the paper's default setting (L = Δ = δ)
``Xp Yp``  number of uniform spatial partitions along x / y
``Sp``     number of s-partitions per window (derived, ``⌈Wmax / L⌉``)
``Dp``     number of d-partitions (derived, ``⌈Dmax / δ⌉``)
``Dmax``   maximum regular valid duration
``ND``     duration sentinel for current entries, ``Dmax + 1``
``Wmax``   maximum actual window extent, ``W + L - 1``
=========  ==================================================================

All timestamps and coordinates are non-negative integers; overlap arithmetic
throughout the package is exact integer math based on the partition formulas
of Section III-B.2:

* ``s-partition(s) = ⌊(s mod 2·Wmax) · Sp / Wmax⌋`` ∈ [0, 2·Sp)
* ``d-partition(d) = ⌊(d - 1) · Dp / (Dmax + 1)⌋`` ∈ [0, Dp)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .records import Rect


@dataclass(frozen=True)
class SWSTConfig:
    """Tunable parameters of an SWST index (paper Table II defaults, scaled).

    Args:
        window: sliding window size ``W``.
        slide: slide parameter ``L`` (granularity of window movement).
        x_partitions, y_partitions: spatial grid resolution ``Xp × Yp``.
        d_max: maximum regular duration ``Dmax``.
        duration_interval: d-axis interval size δ.
        space: spatial domain as a closed rectangle.
        s_partitions: s-partitions per window; defaults to ``⌈Wmax / L⌉``.
        page_size: disk page size in bytes.
        buffer_capacity: buffer pool capacity in pages.
        node_cache_capacity: capacity of the decoded-node object cache
            (``None`` mirrors ``buffer_capacity``; ``0`` disables the
            cache, forcing a parse per fetch and a serialisation per
            write — the A/B baseline for the hot-path benchmark).  Has no
            effect on logical node-access counts.
        spatial_keys: include the Z-curve spatial bits in B+ tree keys
            (disable only for the ablation study of Section V-D.1).
        use_memo: prune temporal cells with the isPresent memo (disable
            only for the Fig. 11 with/without-memo comparison).
        n_shards: number of independent index shards the cell space is
            partitioned across when the index is driven through
            :class:`repro.engine.ShardedEngine`.  A plain
            :class:`~repro.core.index.SWSTIndex` ignores this (it is
            always one shard); the engine requires it to match the
            on-disk shard directory.
        plan_cache_size: capacity of the compiled query-plan cache
            (entries), both per index and at the engine front end.
            ``0`` disables plan caching, forcing temporal
            classification and column-overlap derivation on every
            query — the A/B baseline for the query-path benchmark.
            Has no effect on query results or logical node-access
            counts.
        device_factory: optional ``(path, page_size) -> PageDevice``
            callable; when set, the index builds its pager on the returned
            device instead of opening ``path`` directly.  Used to plug a
            :class:`repro.storage.fault.FaultInjectingPageDevice` (or any
            custom device) under the whole stack.  Excluded from equality
            and repr — it is plumbing, not an index parameter.
    """

    window: int = 20000
    slide: int = 100
    x_partitions: int = 20
    y_partitions: int = 20
    d_max: int = 2000
    duration_interval: int = 100
    space: Rect = field(default_factory=lambda: Rect(0, 0, 10000, 10000))
    s_partitions: int | None = None
    page_size: int = 8192
    buffer_capacity: int = 512
    node_cache_capacity: int | None = None
    spatial_keys: bool = True
    use_memo: bool = True
    n_shards: int = 1
    plan_cache_size: int = 128
    device_factory: Callable[[str, int], Any] | None = \
        field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.slide < 1:
            raise ValueError(f"slide must be >= 1, got {self.slide}")
        if self.slide > self.window:
            raise ValueError("slide must not exceed the window size")
        if self.x_partitions < 1 or self.y_partitions < 1:
            raise ValueError(
                f"spatial partitions must be >= 1, got "
                f"{self.x_partitions}x{self.y_partitions}")
        if self.d_max < 1:
            raise ValueError(f"d_max must be >= 1, got {self.d_max}")
        if self.duration_interval < 1:
            raise ValueError(f"duration_interval must be >= 1, got "
                             f"{self.duration_interval}")
        if self.space.x_lo < 0 or self.space.y_lo < 0:
            raise ValueError("spatial domain must be non-negative")
        if self.s_partitions is not None and self.s_partitions < 1:
            raise ValueError(f"s_partitions must be >= 1 or None, got "
                             f"{self.s_partitions}")
        if self.page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {self.page_size}")
        if self.buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1, got "
                             f"{self.buffer_capacity}")
        if self.node_cache_capacity is not None \
                and self.node_cache_capacity < 0:
            raise ValueError("node_cache_capacity must be >= 0 or None")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.plan_cache_size < 0:
            raise ValueError(f"plan_cache_size must be >= 0, got "
                             f"{self.plan_cache_size}")

    # -- derived quantities --------------------------------------------------

    @property
    def w_max(self) -> int:
        """Maximum actual window extent ``Wmax = W + L - 1``."""
        return self.window + self.slide - 1

    @property
    def sp(self) -> int:
        """Number of s-partitions per window (``Sp``)."""
        if self.s_partitions is not None:
            return self.s_partitions
        return -(-self.w_max // self.slide)  # ceil

    @property
    def dp(self) -> int:
        """Number of d-partitions (``Dp``)."""
        return -(-self.d_max // self.duration_interval)  # ceil

    @property
    def nd(self) -> int:
        """Sentinel duration for current entries (``ND = Dmax + 1``)."""
        return self.d_max + 1

    @property
    def zc_order(self) -> int:
        """Bits per spatial axis for the Z-curve (covers the domain)."""
        extent = max(self.space.x_hi, self.space.y_hi)
        return max(1, extent.bit_length())

    # -- partition arithmetic --------------------------------------------------

    def s_partition(self, s: int) -> int:
        """Modulo-space s-partition index in ``[0, 2·Sp)`` of start time s."""
        return ((s % (2 * self.w_max)) * self.sp) // self.w_max

    def d_partition(self, d: int) -> int:
        """d-partition index in ``[0, Dp)`` of duration ``d ∈ [1, ND]``."""
        if not 1 <= d <= self.nd:
            raise ValueError(f"duration {d} outside [1, {self.nd}]")
        return ((d - 1) * self.dp) // self.nd

    def tree_of(self, s: int) -> int:
        """Which of the two B+ trees holds start time ``s`` (0 or 1)."""
        return (s // self.w_max) % 2

    def s_cell_bounds(self, m: int) -> tuple[int, int]:
        """Modulo-space start-time range ``[S1, S2)`` of s-partition ``m``.

        Partition ``m`` holds exactly the (modulo) start times ``s`` with
        ``s_partition(s) == m``; the bounds follow from inverting the floor
        formula.
        """
        if not 0 <= m < 2 * self.sp:
            raise ValueError(f"s-partition {m} outside [0, {2 * self.sp})")
        s1 = -(-(m * self.w_max) // self.sp)          # ceil(m·Wmax / Sp)
        s2 = -(-((m + 1) * self.w_max) // self.sp)    # ceil((m+1)·Wmax / Sp)
        return s1, s2

    def d_cell_bounds(self, n: int) -> tuple[int, int]:
        """Duration range ``[D1, D2)`` of d-partition ``n`` (inclusive lo)."""
        if not 0 <= n < self.dp:
            raise ValueError(f"d-partition {n} outside [0, {self.dp})")
        d1 = -(-(n * self.nd) // self.dp) + 1
        d2 = -(-((n + 1) * self.nd) // self.dp) + 1
        return d1, d2

    # -- sliding window arithmetic ---------------------------------------------

    def lifetime_end(self, s: int) -> int:
        """End of an entry's lifetime: ``⌈(s + W) / L⌉ · L``."""
        return -(-(s + self.window) // self.slide) * self.slide

    def is_expired(self, s: int, now: int) -> bool:
        """True if an entry that started at ``s`` is expired at time ``now``."""
        return now > self.lifetime_end(s)

    def queriable_period(self, now: int,
                         window: int | None = None) -> tuple[int, int]:
        """Closed queriable time period ``[τ', τ]`` at current time ``now``.

        Args:
            now: the current stream time τ.
            window: logical window size ``W' <= W``; defaults to the physical
                window.
        """
        w = self.window if window is None else window
        if w > self.window:
            raise ValueError(f"logical window {w} exceeds physical window "
                             f"{self.window}")
        if w < 1:
            raise ValueError(f"logical window must be >= 1, got {w}")
        lo = max((now // self.slide) * self.slide - w, 0)
        return lo, now
