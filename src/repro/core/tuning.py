"""Configuration advisor and footprint estimates.

Encodes the tuning guidance of the paper's Sections III-B.3 and V-E as
executable helpers:

* spatial grids work best with a few hundred cells (the paper's sweet
  spot is 300–600; its plots use 400);
* ``Sp = ⌈Wmax / L⌉`` and ``Dp = ⌈Dmax / δ⌉`` with δ sized so Dp stays
  around 20;
* the memo costs ``2 · 16 · Sp · Dp`` bytes per spatial cell (Section
  III-B.3) — the statistical footprint does not grow with the dataset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import SWSTConfig
from .records import Rect

#: The paper's recommended spatial cell count band (Section V-E).
RECOMMENDED_CELLS = (300, 600)

#: The paper's default d-partition count (Dmax=2000, δ=100).
DEFAULT_DP = 20

_MBR_BYTES = 16  # two 2-D corner points of 4 bytes each


def memo_bytes_per_cell(config: SWSTConfig) -> int:
    """Memo footprint of one spatial cell: ``2 · 16 · Sp · Dp`` bytes."""
    return 2 * _MBR_BYTES * config.sp * config.dp


def memo_bytes_total(config: SWSTConfig) -> int:
    """Worst-case (dense) memo footprint across all spatial cells.

    Our implementation stores the memo sparsely, so the actual resident
    size is at most this bound; the bound is what the paper's Section V-E
    reports (≈25 MB at Table II settings).
    """
    cells = config.x_partitions * config.y_partitions
    return cells * memo_bytes_per_cell(config)


@dataclass(frozen=True)
class TuningAdvice:
    """Suggested configuration plus the reasoning behind each choice."""

    config: SWSTConfig
    cells: int
    memo_bytes: int
    notes: tuple[str, ...]


def suggest_config(space: Rect, window: int, slide: int, d_max: int,
                   page_size: int = 8192,
                   target_cells: tuple[int, int] = RECOMMENDED_CELLS,
                   ) -> TuningAdvice:
    """Derive an SWST configuration from workload facts.

    Args:
        space: the spatial domain.
        window: sliding window size ``W``.
        slide: slide ``L``.
        d_max: the maximum regular duration the workload produces (objects
            idle longer are keyed into the top d-partition automatically).
        page_size: disk page size.
        target_cells: acceptable spatial cell count range.

    Returns:
        A :class:`TuningAdvice` whose ``config`` follows the paper's
        guidance, with human-readable notes.
    """
    if target_cells[0] < 1 or target_cells[0] > target_cells[1]:
        raise ValueError(f"bad target cell range {target_cells}")
    notes: list[str] = []
    # Square grid inside the recommended band, biased to its middle.
    per_axis = max(1, round(math.sqrt((target_cells[0] + target_cells[1])
                                      / 2)))
    cells = per_axis * per_axis
    notes.append(f"grid {per_axis}x{per_axis} = {cells} cells "
                 f"(paper Section V-E recommends "
                 f"{target_cells[0]}-{target_cells[1]})")
    # δ so that Dp lands at the paper's default of ~20 partitions.
    duration_interval = max(1, -(-d_max // DEFAULT_DP))
    notes.append(f"duration interval δ={duration_interval} "
                 f"(Dp={-(-d_max // duration_interval)}, paper default 20)")
    notes.append(f"s-partitions default to ceil(Wmax/L)="
                 f"{-(-(window + slide - 1) // slide)} per window "
                 f"(paper Section III-B.2)")
    config = SWSTConfig(window=window, slide=slide,
                        x_partitions=per_axis, y_partitions=per_axis,
                        d_max=d_max, duration_interval=duration_interval,
                        space=space, page_size=page_size)
    footprint = memo_bytes_total(config)
    notes.append(f"memo worst-case footprint "
                 f"{footprint / (1 << 20):.1f} MiB "
                 f"(2*16*Sp*Dp bytes per cell, Section III-B.3)")
    return TuningAdvice(config=config, cells=cells, memo_bytes=footprint,
                        notes=tuple(notes))
