"""The SWST index (paper Sections III-B and IV).

Two-layer structure: a uniform spatial grid whose cells each own two disk
B+ trees keyed by ``[s-partition ⊕ d-partition ⊕ zc(x, y)]``, plus an
in-memory *isPresent* memo per spatial cell.  Supports:

* ordered stream insertion of closed entries and *current* entries (unknown
  end time, finalised by the object's next report),
* arbitrary deletion/update of valid entries (no partial-persistency
  restriction, unlike MV3R),
* timeslice and interval queries, optionally under a *logical* sliding
  window ``W' <= W`` (the paper's limited-disclosure feature),
* sliding-window maintenance: whenever the stream time crosses a multiple
  of ``Wmax`` the fully-expired B+ tree of every spatial cell is dropped
  wholesale — deletion of an entire window of entries with no per-entry
  work.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Sequence

from ..btree.multisearch import hits_in_ranges, multi_range_search
from ..btree.tree import BPlusTree
from ..storage.buffer import BufferPool
from ..storage.errors import CorruptPageFileError, NoCatalogError
from ..storage.pager import MEMORY, Pager
from ..storage.stats import IOStats
from .config import SWSTConfig
from .grid import CellOverlap, SpatialGrid
from .keys import KeyCodec
from .memo import CellMemo
from .overlap import ColumnOverlap, classify_interval
from .plan import PlanCache, PlanEntry, QueryPlan, build_query_plan
from .records import RECORD_SIZE, Entry, Rect, ReportLike
from .results import MultiQueryResult, QueryResult, QueryStats

_CATALOG_HEADER = struct.Struct("<QQQI")       # clock, drop_epoch, size, n_cells
_CATALOG_CELL = struct.Struct("<IIQQ")         # cx, cy, root0+1, root1+1
_CATALOG_CURRENT = struct.Struct("<QIIQ")      # oid, x, y, s
_CATALOG_COUNT = struct.Struct("<I")           # section item count
_CATALOG_RETENTION = struct.Struct("<QQ")      # oid, retention
_PAGE_CHAIN = struct.Struct("<QI")             # next_page, payload_len


def _build_pager(config: SWSTConfig, path: str) -> Pager:
    """Open the page store, honouring ``config.device_factory``."""
    if config.device_factory is None:
        return Pager(path, config.page_size)
    device = config.device_factory(path, config.page_size)
    return Pager(device=device, page_size=config.page_size)


class SWSTIndex:
    """Sliding Window Spatio-Temporal index.

    Args:
        config: index parameters; defaults to the paper's Table II settings.
        path: page file path, or ``":memory:"`` (default) for an in-memory
            page device — identical logical behaviour and identical node
            accesses, without filesystem noise.

    Typical use::

        index = SWSTIndex(SWSTConfig(window=20000, slide=100))
        index.insert(oid=7, x=120, y=450, s=1000, d=50)   # closed entry
        index.insert(oid=8, x=300, y=310, s=1005)          # current entry
        result = index.query_interval(Rect(0, 0, 500, 500), 980, 1010)
    """

    def __init__(self, config: SWSTConfig | None = None,
                 path: str = MEMORY) -> None:
        self.config = config if config is not None else SWSTConfig()
        self.pager = _build_pager(self.config, path)
        try:
            self.pool = BufferPool(
                self.pager, self.config.buffer_capacity,
                node_capacity=self.config.node_cache_capacity)
        except BaseException:
            self.pager.close()
            raise
        self.codec = KeyCodec(self.config)
        self.grid = SpatialGrid(self.config.space, self.config.x_partitions,
                                self.config.y_partitions)
        self._trees: dict[tuple[int, int], list[BPlusTree | None]] = {}
        self._memos: dict[tuple[int, int], CellMemo] = {}
        self._current: dict[int, tuple[int, int, int]] = {}
        self._retentions: dict[int, int] = {}
        self._plans = PlanCache(self.config.plan_cache_size)
        self._clock = 0
        self._drop_epoch = 0
        self._size = 0
        self._closed = False

    # -- properties ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current stream time τ (largest start timestamp seen)."""
        return self._clock

    @property
    def stats(self) -> IOStats:
        """Shared IO statistics of the underlying buffer pool."""
        return self.pool.stats

    def __len__(self) -> int:
        """Number of physically stored entries (including not-yet-dropped
        expired ones)."""
        return self._size

    def current_objects(self) -> dict[int, tuple[int, int, int]]:
        """Snapshot of the current-entry table: oid -> (x, y, s)."""
        return dict(self._current)

    # -- insertion and updates (paper Section IV-A) ------------------------------

    def insert(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> None:
        """Insert an entry; ``d=None`` inserts a *current* entry.

        The stream must be ordered by start timestamp (``s`` non-decreasing).
        For a current entry, any earlier current entry of the same object is
        finalised: its duration becomes the gap between the two reports and
        it is deleted and re-inserted under its real duration key.
        """
        self._check_open()
        if not self.config.space.contains(x, y):
            raise ValueError(f"location ({x}, {y}) outside the spatial "
                             f"domain {self.config.space}")
        if s < self._clock:
            raise ValueError(f"out-of-order start timestamp {s} < current "
                             f"time {self._clock}")
        if d is not None and d < 1:
            raise ValueError(f"duration must be >= 1, got {d}")
        self.advance_time(s)
        if d is not None:
            self._physical_insert(Entry(oid, x, y, s, d))
            return
        previous = self._current.get(oid)
        if previous is not None:
            if previous[2] == s:
                # Re-report at the same timestamp: a position correction.
                # Replace the current entry instead of closing it with a
                # zero-length duration.
                px, py, ps = previous
                self._physical_delete(Entry(oid, px, py, ps, None))
            else:
                self._finalize_current(oid, previous, end=s)
        self._physical_insert(Entry(oid, x, y, s, None))
        self._current[oid] = (x, y, s)

    def report(self, oid: int, x: int, y: int, t: int) -> None:
        """Position report of a moving object (alias of a current insert)."""
        self.insert(oid, x, y, t, None)

    def extend(self, reports: Iterable[ReportLike],
               batch_size: int = 1024) -> int:
        """Feed an iterable of position reports (objects with ``oid``,
        ``x``, ``y``, ``t`` attributes, e.g. :class:`repro.datagen.Report`).

        This is the batched ingestion path: reports are consumed in chunks
        of ``batch_size`` and, within each chunk, grouped by spatial cell
        before the per-cell B+ trees are descended, so consecutive
        insertions into the same cell hit the decoded-node cache instead of
        re-parsing the same root-to-leaf path.  The resulting index state
        (entries, current table, memos, size, clock) is identical to
        per-report :meth:`insert`; only tree page layout and physical IO
        may differ.

        Returns the number of reports ingested.
        """
        self._check_open()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        count = 0
        batch: list[ReportLike] = []
        for report in reports:
            batch.append(report)
            if len(batch) >= batch_size:
                count += self._extend_batch(batch)
                batch.clear()
        if batch:
            count += self._extend_batch(batch)
        return count

    def _extend_batch(self, batch: list[ReportLike]) -> int:
        """Validate one chunk, then ingest it run by run.

        A *run* is a maximal sub-sequence whose start timestamps fall in
        the same ``Wmax`` epoch: window drops only fire at epoch
        boundaries, so within a run the clock can be advanced to the run
        maximum up front and reports of distinct objects commute.
        """
        clock = self._clock
        for report in batch:
            if not self.config.space.contains(report.x, report.y):
                raise ValueError(f"location ({report.x}, {report.y}) outside "
                                 f"the spatial domain {self.config.space}")
            if report.t < clock:
                raise ValueError(f"out-of-order start timestamp {report.t} "
                                 f"< current time {clock}")
            clock = report.t
        w_max = self.config.w_max
        start = 0
        for idx in range(1, len(batch) + 1):
            if idx == len(batch) \
                    or batch[idx].t // w_max != batch[start].t // w_max:
                self._ingest_run(batch[start:idx])
                start = idx
        return len(batch)

    def _ingest_run(self, run: list[ReportLike]) -> None:
        self.advance_time(run[-1].t)
        self._ingest_run_reports(run)

    def _ingest_run_reports(self, run: list[ReportLike]) -> None:
        """Ingest one epoch run, the clock already advanced past it."""
        # Objects reporting more than once in the run must keep their
        # per-object time order (each report finalises the previous one);
        # reports of distinct objects commute, so the rest are grouped by
        # spatial cell for node-cache locality.
        repeats: dict[int, int] = {}
        for report in run:
            repeats[report.oid] = repeats.get(report.oid, 0) + 1
        singles = []
        for report in run:
            if repeats[report.oid] > 1:
                self._ingest_report(report)
            else:
                singles.append(report)
        singles.sort(key=lambda r: self.grid.cell_of(r.x, r.y))
        for report in singles:
            self._ingest_report(report)

    def _ingest_report(self, report: ReportLike) -> None:
        """The current-entry protocol of :meth:`insert`, clock already set."""
        oid, x, y, s = report.oid, report.x, report.y, report.t
        previous = self._current.get(oid)
        if previous is not None:
            if previous[2] == s:
                px, py, ps = previous
                self._physical_delete(Entry(oid, px, py, ps, None))
            else:
                self._finalize_current(oid, previous, end=s)
        self._physical_insert(Entry(oid, x, y, s, None))
        self._current[oid] = (x, y, s)

    def close_object(self, oid: int, t: int) -> bool:
        """Finalise an object's current entry at end time ``t``.

        Use when an object leaves the system without a further report.
        Returns False if the object has no live current entry.
        """
        self._check_open()
        self.advance_time(t)
        previous = self._current.get(oid)
        if previous is None:
            return False
        # Finalise before dropping the table entry so a rejected close
        # (t <= the entry's start) leaves the current table consistent.
        self._finalize_current(oid, previous, end=t)
        del self._current[oid]
        return True

    def _finalize_current(self, oid: int, previous: tuple[int, int, int],
                          end: int) -> None:
        """Replace the ND-keyed record of ``oid`` with its real duration."""
        px, py, ps = previous
        # The previous record is gone if its window has been dropped.
        if ps // self.config.w_max < max(self._drop_epoch - 1, 0):
            return
        if end <= ps:
            raise ValueError(f"object {oid} cannot be finalised at {end} "
                             f"<= its current start {ps}")
        duration = end - ps
        self._physical_delete(Entry(oid, px, py, ps, None))
        self._physical_insert(Entry(oid, px, py, ps, duration))

    def set_retention(self, oid: int, retention: int | None) -> None:
        """Give one object a shorter retention time than the window.

        Section IV-B(d): SWST supports per-entry retention times below the
        physical window size by extending only the refinement step —
        entries of the object whose start has left its personal retention
        horizon are filtered out of query results (and are eventually
        removed by the normal window drop).  ``None`` restores the default.
        """
        self._check_open()
        if retention is None:
            self._retentions.pop(oid, None)
            return
        if not 1 <= retention <= self.config.window:
            raise ValueError(f"retention must be in [1, W={self.config.window}], "
                             f"got {retention}")
        self._retentions[oid] = retention

    def retention_of(self, oid: int) -> int:
        """The object's retention time (defaults to the window size)."""
        return self._retentions.get(oid, self.config.window)

    def _passes_retention(self, entry: Entry) -> bool:
        retention = self._retentions.get(entry.oid)
        if retention is None:
            return True
        horizon = max((self._clock // self.config.slide) * self.config.slide
                      - retention, 0)
        return entry.s >= horizon

    def delete(self, oid: int, x: int, y: int, s: int,
               d: int | None = None) -> bool:
        """Delete one specific entry (any valid entry may be deleted —
        SWST has no partial-persistency restriction).

        Returns True if the entry existed.
        """
        self._check_open()
        entry = Entry(oid, x, y, s, d)
        if not self._physical_delete(entry, missing_ok=True):
            return False
        if d is None and self._current.get(oid) == (x, y, s):
            del self._current[oid]
        return True

    def _cell_state(self, cx: int, cy: int) -> tuple[list[BPlusTree | None],
                                                     CellMemo]:
        key = (cx, cy)
        trees = self._trees.get(key)
        if trees is None:
            trees = [None, None]
            self._trees[key] = trees
            self._memos[key] = CellMemo()
        return trees, self._memos[key]

    def _d_key(self, d: int | None) -> int:
        """Duration value used in key computation.

        Current entries and entries whose duration exceeds ``Dmax`` are
        keyed with the sentinel ``ND`` and thus land in the top
        d-partition; the true duration stays in the record so refinement
        remains exact.
        """
        if d is None or d > self.config.d_max:
            return self.config.nd
        return d

    def _physical_insert(self, entry: Entry) -> None:
        cx, cy = self.grid.cell_of(entry.x, entry.y)
        trees, memo = self._cell_state(cx, cy)
        tree_idx = self.config.tree_of(entry.s)
        tree = trees[tree_idx]
        if tree is None:
            tree = BPlusTree(self.pool, RECORD_SIZE)
            trees[tree_idx] = tree
        d_key = self._d_key(entry.d)
        key = self.codec.encode(entry.s, d_key, entry.x, entry.y)
        tree.insert(key, entry.pack())
        memo.add(self.config.s_partition(entry.s),
                 self.config.d_partition(d_key), entry.x, entry.y)
        self._size += 1

    def _physical_delete(self, entry: Entry, missing_ok: bool = False) -> bool:
        cx, cy = self.grid.cell_of(entry.x, entry.y)
        trees = self._trees.get((cx, cy))
        tree_idx = self.config.tree_of(entry.s)
        tree = trees[tree_idx] if trees else None
        d_key = self._d_key(entry.d)
        key = self.codec.encode(entry.s, d_key, entry.x, entry.y)
        if tree is None or not tree.delete(key, entry.pack()):
            if missing_ok:
                return False
            raise KeyError(f"entry {entry} not found in the index")
        self._memos[(cx, cy)].remove(self.config.s_partition(entry.s),
                                     self.config.d_partition(d_key))
        self._size -= 1
        return True

    # -- sliding window maintenance (paper Section IV-C) --------------------------

    def advance_time(self, now: int) -> None:
        """Move the stream clock forward, dropping fully expired windows.

        Whenever the clock crosses ``k · Wmax``, the B+ tree that held the
        window ``[(k-2)·Wmax, (k-1)·Wmax)`` is dropped in every spatial
        cell and the matching memo partitions are reset.
        """
        self._check_open()
        if now < self._clock:
            raise ValueError(f"clock cannot move backwards "
                             f"({now} < {self._clock})")
        if now != self._clock:
            # The queriable period changed: every cached query plan is
            # stale.  (Each entry is additionally clock-fenced, so even a
            # missed invalidation could never serve a pre-slide plan.)
            self._plans.invalidate()
        self._clock = now
        boundary = now // self.config.w_max
        while self._drop_epoch < boundary:
            self._drop_epoch += 1
            if self._drop_epoch >= 2:
                self._drop_window(self._drop_epoch - 2)

    def _drop_window(self, window_index: int) -> int:
        """Drop every page of the expired window; returns pages freed."""
        tree_idx = window_index % 2
        sp = self.config.sp
        m_lo, m_hi = (0, sp) if tree_idx == 0 else (sp, 2 * sp)
        freed = 0
        for key, trees in self._trees.items():
            tree = trees[tree_idx]
            if tree is None:
                continue
            memo = self._memos[key]
            self._size -= memo.total_in_partitions(m_lo, m_hi)
            freed += tree.drop()
            memo.reset_partitions(m_lo, m_hi)
        stale = [oid for oid, (_, _, s) in self._current.items()
                 if s // self.config.w_max == window_index]
        for oid in stale:
            del self._current[oid]
        return freed

    # -- queries (paper Section IV-B) -------------------------------------------

    def query_timeslice(self, area: Rect, t: int,
                        window: int | None = None) -> QueryResult:
        """All entries within ``area`` that are valid at timestamp ``t``."""
        return self.query_interval(area, t, t, window)

    def query_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> QueryResult:
        """All entries within ``area`` valid during any part of [t_lo, t_hi].

        Args:
            area: closed query rectangle.
            t_lo, t_hi: closed query time interval (must be within the
                queriable period for non-empty results).
            window: logical sliding window ``W' <= W`` restricting the
                result to a shorter history than the physical window.
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        stats = QueryStats()
        result = QueryResult(stats=stats)
        start = self.pool.stats.snapshot()
        # Step (a): static temporal classification, shared by every cell
        # (served from the plan cache when this temporal signature was
        # classified before at the current clock).
        entry = self._plan_entry(t_lo, t_hi, window, stats)
        if entry is not None:
            for cell in self.grid.overlapping_cells(area):
                self._search_cell(cell, entry.plan, area, stats,
                                  result.entries, entry)
        stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return result

    def query_interval_many(self, areas: Sequence[Rect], t_lo: int,
                            t_hi: int,
                            window: int | None = None) -> MultiQueryResult:
        """Evaluate many rectangles against one time interval in a batch.

        Equivalent to one :meth:`query_interval` per rectangle — the
        per-rectangle entries and refinement statistics are identical —
        but the whole batch shares a single query plan, and rectangles
        overlapping the *same* spatial cell share one level-wise B+ tree
        descent over the union of their key ranges (each tree node is
        read once for the batch instead of once per rectangle).  Node
        accesses therefore cannot be attributed to single rectangles and
        are reported only on the batch-level
        :attr:`MultiQueryResult.stats`.

        Args:
            areas: the query rectangles, any overlap structure.
            t_lo, t_hi: closed query time interval shared by the batch.
            window: optional logical window ``W' <= W``.
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        areas = list(areas)
        batch = MultiQueryResult(results=[QueryResult() for _ in areas])
        start = self.pool.stats.snapshot()
        entry = self._plan_entry(t_lo, t_hi, window, batch.stats)
        if entry is not None and areas:
            self._evaluate_many(areas, entry.plan, entry, batch.results)
        for result in batch.results:
            batch.stats.merge(result.stats)
        batch.stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return batch

    def count_interval(self, area: Rect, t_lo: int, t_hi: int,
                       window: int | None = None) -> tuple[int, QueryStats]:
        """Number of qualifying entries (the usage-statistics query of the
        paper's introduction), without materialising them.

        Runs the same classify → memo-prune → multi-range-search pipeline
        as :meth:`query_interval` but refines with a counting sink: no
        :class:`Entry` list is accumulated, and candidates whose temporal
        and spatial cells overlap the query fully are counted without even
        unpacking their payload.

        Returns ``(count, stats)``.
        """
        self._check_open()
        if t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        stats = QueryStats()
        count = 0
        start = self.pool.stats.snapshot()
        entry = self._plan_entry(t_lo, t_hi, window, stats)
        if entry is not None:
            for cell in self.grid.overlapping_cells(area):
                count += self._count_cell(cell, entry.plan, area, stats,
                                          entry)
        stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return count, stats

    def density_grid(self, area: Rect, t: int,
                     window: int | None = None) -> dict[tuple[int, int],
                                                        int]:
        """Distinct objects per spatial grid cell valid at time ``t``.

        The "density of users per region" statistic that motivates the
        paper's Section I.  Returns a mapping from grid cell coordinates
        (only cells overlapping ``area``) to distinct-object counts.
        """
        self._check_open()
        result = self.query_timeslice(area, t, window)
        density: dict[tuple[int, int], set[int]] = {}
        for entry in result:
            cell = self.grid.cell_of(entry.x, entry.y)
            density.setdefault(cell, set()).add(entry.oid)
        counts = {cell: len(oids) for cell, oids in density.items()}
        for cell_overlap in self.grid.overlapping_cells(area):
            counts.setdefault((cell_overlap.cx, cell_overlap.cy), 0)
        return counts

    def object_history(self, oid: int, t_lo: int | None = None,
                       t_hi: int | None = None,
                       window: int | None = None) -> list[Entry]:
        """The object's trajectory within the (logical) window.

        Returns the object's entries valid during ``[t_lo, t_hi]``
        (defaults: the whole queriable period) ordered by start time.
        SWST has no per-object access path — this evaluates a whole-domain
        query and filters, which is O(window); use it for audits and
        right-to-erasure flows (see ``examples/fleet_telematics.py``),
        not in hot loops.
        """
        self._check_open()
        q_lo, q_hi = self.config.queriable_period(self._clock, window)
        t_lo = q_lo if t_lo is None else t_lo
        t_hi = q_hi if t_hi is None else t_hi
        result = self.query_interval(self.config.space, t_lo, t_hi, window)
        return sorted((e for e in result if e.oid == oid),
                      key=lambda e: e.s)

    def forget_object(self, oid: int) -> int:
        """Delete every queriable entry of one object (right to erasure).

        Removes the object's closed entries, its current entry and any
        retention override.  Entries in already-dropped windows are gone
        anyway.  Returns the number of entries deleted.
        """
        self._check_open()
        deleted = 0
        for entry in self.object_history(oid):
            if self.delete(entry.oid, entry.x, entry.y, entry.s, entry.d):
                deleted += 1
        # Expired-but-physically-present entries are invisible to queries
        # but should not outlive an erasure request either.
        for entry in [e for e in self.scan() if e.oid == oid]:
            if self.delete(entry.oid, entry.x, entry.y, entry.s, entry.d):
                deleted += 1
        self._retentions.pop(oid, None)
        return deleted

    def query_knn(self, x: int, y: int, k: int, t_lo: int,
                  t_hi: int | None = None,
                  window: int | None = None) -> QueryResult:
        """The k entries valid during ``[t_lo, t_hi]`` nearest to (x, y).

        The paper's Section VI names KNN over the sliding window as the
        primary future-work extension; this implements it with an
        expanding-ring search over the spatial grid: cells are probed ring
        by ring around the query point, and the search stops as soon as
        the nearest possible point of the next ring is farther than the
        current k-th best candidate.

        Args:
            x, y: query point (must lie in the spatial domain).
            k: number of neighbours.
            t_lo, t_hi: query time interval; omit ``t_hi`` for a timeslice.
            window: optional logical window ``W' <= W``.

        Returns:
            A result whose entries are ordered by ascending Euclidean
            distance (ties by object id and start time).
        """
        self._check_open()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self.config.space.contains(x, y):
            raise ValueError(f"query point ({x}, {y}) outside the domain")
        if t_hi is None:
            t_hi = t_lo
        elif t_hi < t_lo:
            raise ValueError(f"empty query interval [{t_lo}, {t_hi}]")
        stats = QueryStats()
        result = QueryResult(stats=stats)
        start = self.pool.stats.snapshot()
        plan_entry = self._plan_entry(t_lo, t_hi, window, stats)
        if plan_entry is not None:
            candidates = self._knn_ring_search(x, y, k, plan_entry, stats)
            result.entries.extend(entry for _, entry in candidates)
        stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return result

    def _knn_ring_search(self, x: int, y: int, k: int,
                         plan_entry: PlanEntry, stats: QueryStats
                         ) -> list[tuple[tuple[int, int, int], Entry]]:
        """Expanding-ring search keeping only the k best candidates.

        The k nearest seen so far live in a bounded max-heap (heapq is a
        min-heap, so keys are stored component-negated); each new
        candidate either replaces the current worst in O(log k) or is
        dropped in O(1), instead of re-sorting the full candidate list
        after every ring.  Returns at most k ``(sort_key, entry)`` pairs
        ordered by ascending ``(dist², oid, s)``.
        """
        import heapq
        import itertools

        from .grid import CellOverlap as _CellOverlap

        def rect_dist2(bounds: Rect) -> int:
            dx = max(bounds.x_lo - x, 0, x - bounds.x_hi)
            dy = max(bounds.y_lo - y, 0, y - bounds.y_hi)
            return dx * dx + dy * dy

        cx0, cy0 = self.grid.cell_of(x, y)
        # Max-heap of the k best: items are ((-d2, -oid, -s), seq, entry);
        # the monotone sequence number keeps heap comparisons away from
        # Entry objects when two candidates share the full sort key.
        heap: list[tuple[tuple[int, int, int], int, Entry]] = []
        seq = itertools.count()
        max_ring = max(self.grid.xp, self.grid.yp)
        for ring in range(max_ring + 1):
            cells = [
                (cx, cy)
                for cx in range(max(cx0 - ring, 0),
                                min(cx0 + ring, self.grid.xp - 1) + 1)
                for cy in range(max(cy0 - ring, 0),
                                min(cy0 + ring, self.grid.yp - 1) + 1)
                if max(abs(cx - cx0), abs(cy - cy0)) == ring
            ]
            if not cells:
                break
            ring_min = min(rect_dist2(self.grid.cell_bounds(cx, cy))
                           for cx, cy in cells)
            if len(heap) >= k and ring_min > -heap[0][0][0]:
                break
            for cx, cy in cells:
                bounds = self.grid.cell_bounds(cx, cy)
                cell = _CellOverlap(cx=cx, cy=cy, full=True, clipped=bounds)
                found: list[Entry] = []
                self._search_cell(cell, plan_entry.plan, bounds, stats,
                                  found, plan_entry)
                for entry in found:
                    dist2 = ((entry.x - x) ** 2 + (entry.y - y) ** 2)
                    neg_key = (-dist2, -entry.oid, -entry.s)
                    if len(heap) < k:
                        heapq.heappush(heap, (neg_key, next(seq), entry))
                    elif neg_key > heap[0][0]:
                        heapq.heapreplace(heap, (neg_key, next(seq), entry))
        ordered = sorted(heap, key=lambda item: item[0], reverse=True)
        return [((-n0, -n1, -n2), entry)
                for (n0, n1, n2), _, entry in ordered]

    def _plan_entry(self, t_lo: int, t_hi: int, window: int | None,
                    stats: QueryStats) -> PlanEntry | None:
        """Resolve the query plan for one temporal signature.

        Serves a cached plan when one was compiled for the same
        ``(t_lo, t_hi, window)`` at the current clock (counted in
        ``stats.plan_cache_hits``); otherwise runs the classification
        sweep, compiles and caches a fresh plan.  Returns ``None`` when
        no s-partition column qualifies — the query result is empty
        without touching any cell.
        """
        entry = self._plans.lookup(t_lo, t_hi, window, self._clock)
        if entry is not None:
            stats.plan_cache_hits += 1
            return entry
        columns = classify_interval(self.config, self._clock, t_lo, t_hi,
                                    window)
        if not columns:
            return None
        plan = build_query_plan(self.config, self._clock, columns, t_lo,
                                t_hi, window)
        return self._plans.store(plan, t_lo, t_hi, window)

    def _query_area_planned(self, area: Rect,
                            plan: QueryPlan) -> QueryResult:
        """Evaluate a pre-classified interval query over this index's cells.

        The sharded engine's fan-out path: temporal classification and
        the query plan are pure functions of (config, clock, interval),
        so the engine computes them once and every shard runs only the
        per-cell search.  The plan is immutable and read-only here (lint
        rule R007), making concurrent calls on *distinct* shards — and
        retried calls sharing one plan object — safe.
        """
        stats = QueryStats()
        result = QueryResult(stats=stats)
        start = self.pool.stats.snapshot()
        for cell in self.grid.overlapping_cells(area):
            self._search_cell(cell, plan, area, stats, result.entries)
        stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return result

    def _query_area_planned_many(self, areas: Sequence[Rect],
                                 plan: QueryPlan) -> MultiQueryResult:
        """Batched twin of :meth:`_query_area_planned` (engine fan-out)."""
        batch = MultiQueryResult(results=[QueryResult() for _ in areas])
        start = self.pool.stats.snapshot()
        self._evaluate_many(list(areas), plan, None, batch.results)
        for result in batch.results:
            batch.stats.merge(result.stats)
        batch.stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return batch

    def _count_area_planned(self, area: Rect,
                            plan: QueryPlan) -> tuple[int, QueryStats]:
        """Counting twin of :meth:`_query_area_planned`."""
        stats = QueryStats()
        count = 0
        start = self.pool.stats.snapshot()
        for cell in self.grid.overlapping_cells(area):
            count += self._count_cell(cell, plan, area, stats)
        stats.node_accesses = self.pool.stats.diff(start).node_accesses
        return count, stats

    def _evaluate_many(self, areas: list[Rect], plan: QueryPlan,
                       plan_entry: PlanEntry | None,
                       results: list[QueryResult]) -> None:
        """Evaluate one plan over many rectangles, sharing descents.

        Rectangles are grouped by overlapping spatial cell; a cell hit
        by several rectangles is searched once per tree over the union
        of their key ranges (:meth:`_search_cell_multi`).  Per-rectangle
        entries and refinement statistics match a rectangle-at-a-time
        evaluation exactly.
        """
        by_cell: dict[tuple[int, int], list[tuple[int, CellOverlap]]] = {}
        for idx, area in enumerate(areas):
            for cell in self.grid.overlapping_cells(area):
                by_cell.setdefault((cell.cx, cell.cy), []).append((idx,
                                                                   cell))
        # Ascending cell order: overlapping_cells() walks each rect's
        # cells row-major, so sorted iteration keeps every rectangle's
        # entry order identical to its scalar evaluation.
        for _, members in sorted(by_cell.items()):
            if len(members) == 1:
                idx, cell = members[0]
                result = results[idx]
                self._search_cell(cell, plan, areas[idx], result.stats,
                                  result.entries, plan_entry)
            else:
                self._search_cell_multi(members, plan, areas, results,
                                        plan_entry)

    def _search_cell(self, cell: CellOverlap, plan: QueryPlan,
                     area: Rect, stats: QueryStats, out: list[Entry],
                     plan_entry: PlanEntry | None = None) -> None:
        """Steps (b)-(d) of the query pipeline for one spatial cell."""
        trees = self._trees.get((cell.cx, cell.cy))
        if trees is None:
            return
        memo = self._memos[(cell.cx, cell.cy)]
        stats.spatial_cells += 1
        for tree_idx in (0, 1):
            tree = trees[tree_idx]
            columns = plan.by_tree[tree_idx]
            if tree is None or not columns:
                continue
            ranges = self._ranges_for(plan_entry, columns, memo, cell.cx,
                                      cell.cy, tree_idx, cell.clipped,
                                      stats)
            if not ranges:
                continue
            stats.key_ranges += len(ranges)
            hits = multi_range_search(tree, ranges)
            self._refine(hits, plan, cell.full, area, stats, out)

    def _search_cell_multi(self, members: list[tuple[int, CellOverlap]],
                           plan: QueryPlan, areas: list[Rect],
                           results: list[QueryResult],
                           plan_entry: PlanEntry | None) -> None:
        """Search one spatial cell for several rectangles at once.

        One level-wise descent per tree covers the union of every
        member rectangle's key ranges; each rectangle's own candidates
        are then recovered by bisecting the key-ordered hit list with
        its own (sorted, disjoint) ranges, so per-rectangle refinement
        statistics are identical to a scalar evaluation.
        """
        cx, cy = members[0][1].cx, members[0][1].cy
        trees = self._trees.get((cx, cy))
        if trees is None:
            return
        memo = self._memos[(cx, cy)]
        for idx, _ in members:
            results[idx].stats.spatial_cells += 1
        for tree_idx in (0, 1):
            tree = trees[tree_idx]
            columns = plan.by_tree[tree_idx]
            if tree is None or not columns:
                continue
            active: list[tuple[int, CellOverlap,
                               tuple[tuple[int, int], ...]]] = []
            for idx, cell in members:
                stats = results[idx].stats
                ranges = self._ranges_for(plan_entry, columns, memo, cx, cy,
                                          tree_idx, cell.clipped, stats)
                if ranges:
                    stats.key_ranges += len(ranges)
                    active.append((idx, cell, ranges))
            if not active:
                continue
            hits = multi_range_search(
                tree, [r for _, _, ranges in active for r in ranges])
            keys = [key for key, _ in hits]
            for idx, cell, ranges in active:
                own = hits_in_ranges(hits, keys, ranges)
                self._refine(own, plan, cell.full, areas[idx],
                             results[idx].stats, results[idx].entries)

    def _ranges_for(self, plan_entry: PlanEntry | None,
                    columns: tuple[ColumnOverlap, ...], memo: CellMemo,
                    cx: int, cy: int, tree_idx: int, clipped: Rect,
                    stats: QueryStats) -> tuple[tuple[int, int], ...]:
        """Memo-pruned key ranges of one (cell, tree), cached per plan.

        A cache slot is only replayed while the memo generation it was
        derived at is current; the replay restores the same
        ``columns_examined`` accounting the pruning sweep would have
        produced, so statistics are identical with and without the
        cache.
        """
        generation = memo.generation
        if plan_entry is not None:
            cached = plan_entry.cell_ranges(cx, cy, tree_idx, clipped,
                                            generation)
            if cached is not None:
                stats.columns_examined += cached[2]
                return cached[1]
        ranges, examined = self._build_key_ranges(columns, memo, clipped)
        stats.columns_examined += examined
        if plan_entry is not None:
            plan_entry.store_cell_ranges(cx, cy, tree_idx, clipped,
                                         generation, ranges, examined)
        return ranges

    def _build_key_ranges(self, columns: tuple[ColumnOverlap, ...],
                          memo: CellMemo, clipped: Rect
                          ) -> tuple[tuple[tuple[int, int], ...], int]:
        """Step (b): memo-pruned key ranges, one per non-empty column.

        Returns ``(ranges, columns_examined)``; the caller owns the
        statistics accounting so cached replays stay byte-identical.
        """
        dp = self.config.dp
        use_memo = self.config.use_memo
        overlaps = memo.overlaps
        z_lo, z_hi = self.codec.rect_z(clipped)
        column_range_z = self.codec.column_range_z
        ranges: list[tuple[int, int]] = []
        examined = 0
        for column in columns:
            examined += 1
            if use_memo:
                n_min = -1
                n_max = -1
                for n in range(column.d_first, dp):
                    if overlaps(column.s_part, n, clipped):
                        if n_min < 0:
                            n_min = n
                        n_max = n
                if n_min < 0:
                    continue
            else:
                # Fig. 11 ablation: search the whole overlapping band.
                n_min, n_max = column.d_first, dp - 1
            ranges.append(column_range_z(column.s_part, n_min, n_max,
                                         z_lo, z_hi))
        return tuple(ranges), examined

    def _refine(self, hits: list[tuple[int, bytes]], plan: QueryPlan,
                spatial_full: bool, area: Rect, stats: QueryStats,
                out: list[Entry]) -> None:
        """Step (d): drop false positives; skip checks for full overlaps."""
        if not hits:
            return
        column_of = plan.column_of
        q_lo, s_hi_eff, t_lo = plan.q_lo, plan.s_hi_eff, plan.t_lo
        check_retention = bool(self._retentions)
        unpack = Entry.unpack
        splits = self.codec.split_many([key for key, _ in hits])
        for (_, payload), (s_part, d_part) in zip(hits, splits,
                                                  strict=True):
            stats.candidates += 1
            column = column_of.get(s_part)
            if column is None:
                # Physically present entry of an s-partition with no
                # qualifying starts (expired band of a shared cycle).
                stats.refined_out += 1
                continue
            entry = unpack(payload)
            if check_retention and not self._passes_retention(entry):
                stats.refined_out += 1
                continue
            temporal_full = d_part >= column.d_full
            if temporal_full and spatial_full:
                stats.full_hits += 1
                out.append(entry)
                continue
            if not temporal_full and \
                    not (q_lo <= entry.s <= s_hi_eff and entry.end > t_lo):
                stats.refined_out += 1
                continue
            if not spatial_full and not area.contains(entry.x, entry.y):
                stats.refined_out += 1
                continue
            out.append(entry)

    def _count_cell(self, cell: CellOverlap, plan: QueryPlan, area: Rect,
                    stats: QueryStats,
                    plan_entry: PlanEntry | None = None) -> int:
        """Counting twin of :meth:`_search_cell` — no entries materialise."""
        trees = self._trees.get((cell.cx, cell.cy))
        if trees is None:
            return 0
        memo = self._memos[(cell.cx, cell.cy)]
        stats.spatial_cells += 1
        count = 0
        for tree_idx in (0, 1):
            tree = trees[tree_idx]
            columns = plan.by_tree[tree_idx]
            if tree is None or not columns:
                continue
            ranges = self._ranges_for(plan_entry, columns, memo, cell.cx,
                                      cell.cy, tree_idx, cell.clipped,
                                      stats)
            if not ranges:
                continue
            stats.key_ranges += len(ranges)
            hits = multi_range_search(tree, ranges)
            count += self._refine_count(hits, plan, cell.full, area, stats)
        return count

    def _refine_count(self, hits: list[tuple[int, bytes]], plan: QueryPlan,
                      spatial_full: bool, area: Rect,
                      stats: QueryStats) -> int:
        """Refinement that counts instead of accumulating entries.

        Mirrors :meth:`_refine` predicate for predicate, but never builds
        an entry list, and full temporal+spatial hits of an index without
        retention overrides are counted from the key alone — the record
        payload is not even unpacked.
        """
        if not hits:
            return 0
        column_of = plan.column_of
        q_lo, s_hi_eff, t_lo = plan.q_lo, plan.s_hi_eff, plan.t_lo
        check_retention = bool(self._retentions)
        unpack = Entry.unpack
        splits = self.codec.split_many([key for key, _ in hits])
        count = 0
        for (_, payload), (s_part, d_part) in zip(hits, splits,
                                                  strict=True):
            stats.candidates += 1
            column = column_of.get(s_part)
            if column is None:
                stats.refined_out += 1
                continue
            temporal_full = d_part >= column.d_full
            if temporal_full and spatial_full and not check_retention:
                stats.full_hits += 1
                count += 1
                continue
            entry = unpack(payload)
            if check_retention and not self._passes_retention(entry):
                stats.refined_out += 1
                continue
            if temporal_full and spatial_full:
                stats.full_hits += 1
                count += 1
                continue
            if not temporal_full and \
                    not (q_lo <= entry.s <= s_hi_eff and entry.end > t_lo):
                stats.refined_out += 1
                continue
            if not spatial_full and not area.contains(entry.x, entry.y):
                stats.refined_out += 1
                continue
            count += 1
        return count

    # -- introspection -------------------------------------------------------------

    def scan(self) -> Iterator[Entry]:
        """Yield every physically stored entry (diagnostics/tests only)."""
        self._check_open()
        for trees in self._trees.values():
            for tree in trees:
                if tree is None:
                    continue
                for _, payload in tree.items():
                    yield Entry.unpack(payload)

    def node_count(self) -> int:
        """Total B+ tree pages across every spatial cell."""
        return sum(tree.node_count()
                   for trees in self._trees.values()
                   for tree in trees if tree is not None)

    def check_integrity(self) -> None:
        """Validate every cross-structure invariant; raises on violation.

        Checks, for every spatial cell: B+ tree structural invariants;
        that each stored entry lives in the correct cell, tree and key;
        that the memo's per-temporal-cell counts match the stored entries
        exactly and every MBR covers its entries; and that the
        current-entry table points at live ND records.  Intended for
        tests and post-crash verification — cost is a full scan.
        """
        self._check_open()
        total = 0
        current_seen: set[int] = set()
        for (cx, cy), trees in self._trees.items():
            memo = self._memos[(cx, cy)]
            counts: dict[tuple[int, int], int] = {}
            for tree_idx, tree in enumerate(trees):
                if tree is None:
                    continue
                tree.check_invariants()
                for key, payload in tree.items():
                    entry = Entry.unpack(payload)
                    total += 1
                    if self.grid.cell_of(entry.x, entry.y) != (cx, cy):
                        raise AssertionError(
                            f"{entry} stored in wrong spatial cell "
                            f"({cx}, {cy})")
                    if self.config.tree_of(entry.s) != tree_idx:
                        raise AssertionError(
                            f"{entry} stored in wrong tree {tree_idx}")
                    d_key = self._d_key(entry.d)
                    expected = self.codec.encode(entry.s, d_key, entry.x,
                                                 entry.y)
                    if key != expected:
                        raise AssertionError(
                            f"{entry} stored under key {key}, "
                            f"expected {expected}")
                    cell_key = (self.config.s_partition(entry.s),
                                self.config.d_partition(d_key))
                    counts[cell_key] = counts.get(cell_key, 0) + 1
                    mbr = memo.mbr(*cell_key)
                    if mbr is None or not mbr.contains(entry.x, entry.y):
                        raise AssertionError(
                            f"memo MBR {mbr} does not cover {entry}")
                    if entry.d is None:
                        if self._current.get(entry.oid) != (entry.x,
                                                            entry.y,
                                                            entry.s):
                            raise AssertionError(
                                f"stray current entry {entry} not in the "
                                f"current-object table")
                        current_seen.add(entry.oid)
            for cell_key, count in counts.items():
                if memo.count(*cell_key) != count:
                    raise AssertionError(
                        f"memo count {memo.count(*cell_key)} != stored "
                        f"{count} in cell ({cx}, {cy}) temporal {cell_key}")
            for cell_key in memo._cells:
                if cell_key not in counts:
                    raise AssertionError(
                        f"memo cell {cell_key} non-empty but no entries "
                        f"stored in spatial cell ({cx}, {cy})")
        if total != self._size:
            raise AssertionError(f"size counter {self._size} != stored "
                                 f"entries {total}")
        if current_seen != set(self._current):
            raise AssertionError(
                f"current table {sorted(self._current)} disagrees with "
                f"stored ND records {sorted(current_seen)}")

    # -- persistence ----------------------------------------------------------------

    def save(self) -> None:
        """Persist the tree catalog and stream state into the page file.

        Catalog layout: header, cell roots, current-entry table, then (a
        format-2 addition) the per-object retention overrides.  Readers
        detect a legacy format-1 catalog by the blob ending right after
        the current table, so both formats stay openable.
        """
        self._check_open()
        cells = sorted(self._trees.items())
        parts = [_CATALOG_HEADER.pack(self._clock, self._drop_epoch,
                                      self._size, len(cells))]
        for (cx, cy), trees in cells:
            roots = [0 if tree is None else tree.root_page + 1
                     for tree in trees]
            parts.append(_CATALOG_CELL.pack(cx, cy, roots[0], roots[1]))
        parts.append(_CATALOG_COUNT.pack(len(self._current)))
        for oid, (x, y, s) in sorted(self._current.items()):
            parts.append(_CATALOG_CURRENT.pack(oid, x, y, s))
        parts.append(_CATALOG_COUNT.pack(len(self._retentions)))
        for oid, retention in sorted(self._retentions.items()):
            parts.append(_CATALOG_RETENTION.pack(oid, retention))
        self._write_catalog(b"".join(parts))
        self.pool.flush()
        self.pager.sync()

    def _write_catalog(self, blob: bytes) -> None:
        old_head = int.from_bytes(self.pager.meta or b"\x00" * 8, "little")
        chunk = self.pager.page_size - _PAGE_CHAIN.size
        pages = [self.pager.allocate()
                 for _ in range(max(1, -(-len(blob) // chunk)))]
        for idx, page_id in enumerate(pages):
            payload = blob[idx * chunk:(idx + 1) * chunk]
            next_page = pages[idx + 1] if idx + 1 < len(pages) else 0
            raw = _PAGE_CHAIN.pack(next_page, len(payload)) + payload
            self.pager.write(page_id, raw.ljust(self.pager.page_size, b"\x00"))
        self.pager.meta = pages[0].to_bytes(8, "little")
        while old_head:
            raw = self.pager.read(old_head)
            next_page, _ = _PAGE_CHAIN.unpack_from(raw)
            self.pager.free(old_head)
            old_head = next_page

    @classmethod
    def open(cls, path: str, config: SWSTConfig) -> "SWSTIndex":
        """Re-open a saved index, validating its on-disk structure.

        Opening runs a bounded recovery pass: the pager itself recovers its
        committed header and free list; on top of that the catalog page
        chain is walked with a cycle check and every tree root must point
        at a live in-range page.  Structural damage raises
        :class:`~repro.storage.errors.CorruptPageFileError` rather than
        producing an index that answers queries from garbage.

        The isPresent memos are rebuilt by scanning the trees (they are an
        in-memory acceleration structure; the paper stores them in RAM too).
        """
        index = cls.__new__(cls)
        index.config = config
        index.pager = _build_pager(config, path)
        try:
            index.pool = BufferPool(index.pager, config.buffer_capacity,
                                    node_capacity=config.node_cache_capacity)
            index.codec = KeyCodec(config)
            index.grid = SpatialGrid(config.space, config.x_partitions,
                                     config.y_partitions)
            index._trees = {}
            index._memos = {}
            index._current = {}
            index._retentions = {}
            index._plans = PlanCache(config.plan_cache_size)
            index._clock = 0
            index._drop_epoch = 0
            index._size = 0
            index._closed = False
            index._load_catalog()
            index._rebuild_memos()
        except BaseException:
            index._closed = True
            try:
                pool = getattr(index, "pool", None)
                if pool is not None:
                    pool._closed = True  # discard, don't flush, on failure
            finally:
                index.pager.close()
            raise
        return index

    def _check_root(self, root: int) -> None:
        """A catalog tree root must name a live, in-range data page."""
        if not self.pager.first_data_page <= root < self.pager.page_count():
            raise CorruptPageFileError(
                f"catalog names tree root page {root}, outside the data "
                f"range [{self.pager.first_data_page}, "
                f"{self.pager.page_count()})")
        if self.pager.page_is_free(root):
            raise CorruptPageFileError(
                f"catalog names tree root page {root}, which is on the "
                f"free list")

    def _load_catalog(self) -> None:
        blob = self._read_catalog()
        try:
            offset = _CATALOG_HEADER.size
            clock, drop_epoch, size, n_cells = \
                _CATALOG_HEADER.unpack_from(blob)
            self._clock, self._drop_epoch, self._size = \
                clock, drop_epoch, size
            for _ in range(n_cells):
                cx, cy, root0, root1 = _CATALOG_CELL.unpack_from(blob,
                                                                 offset)
                offset += _CATALOG_CELL.size
                for root in (root0, root1):
                    if root:
                        self._check_root(root - 1)
                trees: list[BPlusTree | None] = [
                    BPlusTree(self.pool, RECORD_SIZE, root0 - 1) if root0
                    else None,
                    BPlusTree(self.pool, RECORD_SIZE, root1 - 1) if root1
                    else None,
                ]
                self._trees[(cx, cy)] = trees
                self._memos[(cx, cy)] = CellMemo()
            (n_current,) = _CATALOG_COUNT.unpack_from(blob, offset)
            offset += _CATALOG_COUNT.size
            for _ in range(n_current):
                oid, x, y, s = _CATALOG_CURRENT.unpack_from(blob, offset)
                offset += _CATALOG_CURRENT.size
                self._current[oid] = (x, y, s)
            if offset < len(blob):
                # Format 2: retention overrides follow the current table
                # (format-1 catalogs end exactly here).
                (n_retentions,) = _CATALOG_COUNT.unpack_from(blob, offset)
                offset += _CATALOG_COUNT.size
                for _ in range(n_retentions):
                    oid, retention = _CATALOG_RETENTION.unpack_from(blob,
                                                                    offset)
                    offset += _CATALOG_RETENTION.size
                    self._retentions[oid] = retention
        except struct.error as exc:
            raise CorruptPageFileError(
                f"saved SWST catalog is truncated: {exc}") from exc

    def _read_catalog(self) -> bytes:
        head = int.from_bytes(self.pager.meta or b"", "little")
        if not head:
            raise NoCatalogError("page file has no saved SWST catalog")
        parts: list[bytes] = []
        seen: set[int] = set()
        chunk = self.pager.page_size - _PAGE_CHAIN.size
        while head:
            if head in seen:
                raise CorruptPageFileError(
                    f"cycle in catalog page chain at page {head}")
            seen.add(head)
            raw = self.pager.read(head)
            head, length = _PAGE_CHAIN.unpack_from(raw)
            if length > chunk:
                raise CorruptPageFileError(
                    f"catalog page claims {length} payload bytes "
                    f"(max {chunk})")
            parts.append(raw[_PAGE_CHAIN.size:_PAGE_CHAIN.size + length])
        return b"".join(parts)

    def _rebuild_memos(self) -> None:
        for key, trees in self._trees.items():
            memo = self._memos[key]
            for tree in trees:
                if tree is None:
                    continue
                for _, payload in tree.items():
                    entry = Entry.unpack(payload)
                    d_key = self._d_key(entry.d)
                    memo.add(self.config.s_partition(entry.s),
                             self.config.d_partition(d_key),
                             entry.x, entry.y)

    # -- lifecycle ----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("index is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.pool.close()
            finally:
                self.pager.close()

    def abort(self) -> None:
        """Release the index without flushing or committing anything.

        Crash-equivalent shutdown: dirty buffered pages are dropped and
        the pager's on-disk header keeps its last durable state.  Warm
        workers always stop this way — between :meth:`save` calls their
        durable record is the shard's write-ahead log, so a graceful
        stop and a SIGKILL must leave the file in the same state for
        replay to be correct.
        """
        if not self._closed:
            self._closed = True
            try:
                self.pool.discard()
            finally:
                self.pager.abort()

    def __enter__(self) -> "SWSTIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
