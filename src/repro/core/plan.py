"""Compiled query plans and the epoch-fenced plan cache.

A *query plan* is everything about an interval query that does not depend
on the spatial area: the temporal-cell classification (one
:class:`~repro.core.overlap.ColumnOverlap` per qualifying s-partition
column, split by B+ tree), the column lookup table used during
refinement, and the effective temporal predicate bounds.  It is a pure
function of ``(config, clock, t_lo, t_hi, window)`` — deriving it costs
a full classification sweep, which repeated dashboard queries used to
pay on every evaluation.

:class:`QueryPlan` is a frozen dataclass and must be treated as
**immutable after construction** (lint rule R007 enforces this across
``core/`` and ``engine/``): plans are shared — between the queries that
hit the cache, between the shards of a
:class:`~repro.engine.ShardedEngine` fan-out, and between retry attempts
of a failed shard task — so any in-place mutation would be a data race
and a cross-query correctness bug.

:class:`PlanCache` memoises plans keyed by ``(t_lo, t_hi, window)`` and
fences every entry on the stream clock: the cache is invalidated
wholesale when the clock moves (a window slide changes the queriable
period, so *no* pre-slide plan may survive), and each entry additionally
records the clock it was derived at, so a stale entry can never be
served even if an invalidation hook is missed.  Mutations at an
unchanged clock (inserts, deletes) cannot change the classification —
but they do change the per-cell *isPresent* memos, so the memo-pruned
key ranges cached alongside each plan carry the owning memo's
generation counter and are recomputed on mismatch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .config import SWSTConfig
from .overlap import ColumnOverlap
from .records import Rect

#: Cache key: the query's temporal signature.  The clock is *not* part of
#: the key — it is a fence (entries derived at another clock are dead).
PlanKey = tuple[int, int, int | None]

#: Cached per-cell search state: (memo generation, memo-pruned key
#: ranges, columns examined while pruning).
CellRanges = tuple[int, tuple[tuple[int, int], ...], int]


@dataclass(frozen=True)
class QueryPlan:
    """Pre-computed per-query state shared by every spatial cell.

    Attributes:
        by_tree: qualifying columns of each of the two B+ trees, in key
            order (sorted and disjoint in key space).
        column_of: modulo s-partition -> its classification, used by the
            refinement step.  The mapping is logically frozen; do not
            mutate it (R007).
        q_lo: lower bound of the queriable period at plan time.
        s_hi_eff: largest start timestamp that can qualify
            (``min(q_hi, t_hi)``).
        t_lo: the query interval's lower bound (end-time predicate).
        clock: stream time the plan was derived at.  A plan is only
            valid while the index clock equals this value.
    """

    by_tree: tuple[tuple[ColumnOverlap, ...], tuple[ColumnOverlap, ...]]
    column_of: dict[int, ColumnOverlap]
    q_lo: int
    s_hi_eff: int
    t_lo: int
    clock: int


def build_query_plan(config: SWSTConfig, clock: int,
                     columns: list[ColumnOverlap], t_lo: int, t_hi: int,
                     window: int | None) -> QueryPlan:
    """Compile classified columns into an immutable :class:`QueryPlan`."""
    q_lo, q_hi = config.queriable_period(clock, window)
    tree0 = tuple(column for column in columns if column.tree == 0)
    tree1 = tuple(column for column in columns if column.tree == 1)
    return QueryPlan(
        by_tree=(tree0, tree1),
        column_of={column.s_part: column for column in columns},
        q_lo=q_lo,
        s_hi_eff=min(q_hi, t_hi),
        t_lo=t_lo,
        clock=clock,
    )


class PlanEntry:
    """One cached plan plus its per-cell derived search state.

    The plan itself is immutable; the entry owns the *mutable* range
    cache so that plan purity (R007) and range memoisation do not
    conflict.  Range slots are keyed by ``(cx, cy, tree_idx, clipped)``
    — the clipped rectangle matters because queries sharing a temporal
    signature may carry different areas, and the Z-corner bounds and
    memo pruning both depend on the per-cell clip — and fenced on the
    owning cell memo's generation counter.  The slot table is bounded:
    a workload that re-uses one temporal signature across unboundedly
    many distinct rectangles resets it rather than growing without
    limit.
    """

    __slots__ = ("plan", "_ranges")

    #: Maximum cached (cell, tree, clip) slots per plan entry.
    MAX_RANGE_SLOTS = 4096

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        self._ranges: dict[tuple[int, int, int, Rect], CellRanges] = {}

    def cell_ranges(self, cx: int, cy: int, tree_idx: int, clipped: Rect,
                    generation: int) -> CellRanges | None:
        """Cached ranges for one (cell, tree, clip), or None if
        absent/stale."""
        cached = self._ranges.get((cx, cy, tree_idx, clipped))
        if cached is None or cached[0] != generation:
            return None
        return cached

    def store_cell_ranges(self, cx: int, cy: int, tree_idx: int,
                          clipped: Rect, generation: int,
                          ranges: tuple[tuple[int, int], ...],
                          columns_examined: int) -> None:
        if len(self._ranges) >= self.MAX_RANGE_SLOTS:
            self._ranges.clear()
        self._ranges[(cx, cy, tree_idx, clipped)] = (generation, ranges,
                                                     columns_examined)


class PlanCache:
    """Bounded LRU cache of compiled query plans, fenced on the clock.

    ``capacity=0`` disables caching entirely (every lookup misses and
    nothing is stored) — the A/B baseline for the query-path benchmark.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[PlanKey, PlanEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, t_lo: int, t_hi: int, window: int | None,
               clock: int) -> PlanEntry | None:
        """The cached entry for this temporal signature, if still valid.

        An entry derived at a different clock is defensively dropped on
        sight — :meth:`invalidate` already clears the cache whenever the
        index clock moves, but the per-entry fence guarantees a stale
        plan can never be served even if a future mutation path forgets
        to invalidate.
        """
        key: PlanKey = (t_lo, t_hi, window)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.plan.clock != clock:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, plan: QueryPlan, t_lo: int, t_hi: int,
              window: int | None) -> PlanEntry:
        """Cache a freshly built plan; returns its entry.

        With ``capacity=0`` the entry is created but not retained, so
        callers can use the per-cell range slots within one query even
        when caching across queries is disabled.
        """
        entry = PlanEntry(plan)
        if self.capacity == 0:
            return entry
        key: PlanKey = (t_lo, t_hi, window)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def invalidate(self) -> None:
        """Drop every cached plan (the stream clock moved)."""
        self._entries.clear()
