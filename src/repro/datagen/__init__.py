"""Synthetic data: the GSTD stream generator and query workloads."""

from .gstd import GSTDConfig, GSTDGenerator, Report
from .roadnet import RoadNetConfig, RoadNetGenerator
from .workloads import Query, WorkloadConfig, generate_queries

__all__ = [
    "GSTDConfig",
    "GSTDGenerator",
    "Query",
    "Report",
    "RoadNetConfig",
    "RoadNetGenerator",
    "WorkloadConfig",
    "generate_queries",
]
