"""GSTD-style spatio-temporal stream generator (Theodoridis, Silva &
Nascimento, SSD 1999) — the data source of the paper's evaluation.

GSTD simulates ``num_objects`` discretely moving point objects.  Each
object reports its position at irregular timestamps; the *duration* of an
entry is the gap between two consecutive reports of the same object
(paper Section V-B).  Positions evolve by bounded random deltas inside the
unit workspace and are scaled to the integer domain of Table II.

Supported knobs (the subset the paper exercises, plus the skewed variants
its Section V-B mentions):

* initial distribution: ``uniform`` / ``gaussian`` / ``skewed``,
* movement deltas: uniform in ``[-agility, +agility]`` per axis,
* boundary policy: ``clip`` (stick to the wall) or ``wrap`` (toroidal),
* report intervals: uniform integers in ``[interval_lo, interval_hi]``,
* a fraction of *long-duration* objects whose report interval is drawn
  from a much larger range (the Fig. 11 workload).

The generator is fully deterministic given ``seed``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterator

from ..core.records import Rect


@dataclass(frozen=True, slots=True)
class Report:
    """One position report in the generated stream."""

    oid: int
    x: int
    y: int
    t: int


@dataclass
class GSTDConfig:
    """Parameters of one GSTD run.

    Defaults follow the paper's Table II shape at a scaled-down size: with
    ``num_objects=10_000``, ``max_time=100_000`` and intervals in
    [1, 2000] (mean ≈ 1000) a run produces roughly ``100`` reports per
    object — the paper's 10K objects → 1M records ratio.
    """

    num_objects: int = 1000
    max_time: int = 100_000
    space: Rect = field(default_factory=lambda: Rect(0, 0, 10000, 10000))
    interval_lo: int = 1
    interval_hi: int = 2000
    initial: str = "uniform"          # uniform | gaussian | skewed
    agility: float = 0.05             # max per-report move, workspace units
    boundary: str = "clip"            # clip | wrap
    long_fraction: float = 0.0        # fraction of long-duration objects
    long_interval_hi: int = 20000     # their report-interval upper bound
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if not 1 <= self.interval_lo <= self.interval_hi:
            raise ValueError("need 1 <= interval_lo <= interval_hi")
        if self.initial not in ("uniform", "gaussian", "skewed"):
            raise ValueError(f"unknown initial distribution {self.initial!r}")
        if self.boundary not in ("clip", "wrap"):
            raise ValueError(f"unknown boundary policy {self.boundary!r}")
        if not 0.0 <= self.long_fraction <= 1.0:
            raise ValueError("long_fraction must be in [0, 1]")


class GSTDGenerator:
    """Generates a time-ordered stream of :class:`Report` objects."""

    def __init__(self, config: GSTDConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)

    def _initial_position(self) -> tuple[float, float]:
        rng = self._rng
        kind = self.config.initial
        if kind == "uniform":
            return rng.random(), rng.random()
        if kind == "gaussian":
            return (min(max(rng.gauss(0.5, 0.15), 0.0), 1.0),
                    min(max(rng.gauss(0.5, 0.15), 0.0), 1.0))
        # skewed: density concentrated toward the origin.
        return rng.random() ** 2, rng.random() ** 2

    def _scale(self, fx: float, fy: float) -> tuple[int, int]:
        space = self.config.space
        x = space.x_lo + round(fx * (space.x_hi - space.x_lo))
        y = space.y_lo + round(fy * (space.y_hi - space.y_lo))
        return x, y

    def _step(self, value: float) -> float:
        delta = self._rng.uniform(-self.config.agility, self.config.agility)
        moved = value + delta
        if self.config.boundary == "clip":
            return min(max(moved, 0.0), 1.0)
        return moved % 1.0

    def _interval(self, is_long: bool) -> int:
        if is_long:
            return self._rng.randint(self.config.interval_lo,
                                     self.config.long_interval_hi)
        return self._rng.randint(self.config.interval_lo,
                                 self.config.interval_hi)

    def stream(self) -> Iterator[Report]:
        """Yield reports ordered by timestamp (ties broken by object id)."""
        cfg = self.config
        rng = self._rng
        long_objects = {oid for oid in range(cfg.num_objects)
                        if rng.random() < cfg.long_fraction}
        # (next_report_time, oid, fx, fy)
        heap: list[tuple[int, int, float, float]] = []
        for oid in range(cfg.num_objects):
            fx, fy = self._initial_position()
            start = rng.randint(0, max(cfg.interval_hi // 4, 1))
            heapq.heappush(heap, (start, oid, fx, fy))
        while heap:
            t, oid, fx, fy = heapq.heappop(heap)
            if t > cfg.max_time:
                continue
            x, y = self._scale(fx, fy)
            yield Report(oid=oid, x=x, y=y, t=t)
            nxt = t + self._interval(oid in long_objects)
            if nxt <= cfg.max_time:
                heapq.heappush(heap, (nxt, oid, self._step(fx),
                                      self._step(fy)))

    def materialize(self) -> list[Report]:
        """Return the whole stream as a list."""
        return list(self.stream())
