"""Query workload generation (paper Section V-B).

The paper evaluates 200 random queries generated *within the current
sliding window* once the stream reaches steady state.  A query has a
spatial extent (query area as a fraction of the spatial domain area: 0.5 %,
1 %, 4 %) and a temporal extent (query interval length as a fraction of the
**total** temporal domain ``T``: 0 % = timeslice, 5 %, 10 %, 15 %).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.config import SWSTConfig
from ..core.records import Rect


@dataclass(frozen=True, slots=True)
class Query:
    """One benchmark query: a rectangle and a closed time interval."""

    area: Rect
    t_lo: int
    t_hi: int

    @property
    def is_timeslice(self) -> bool:
        return self.t_lo == self.t_hi


@dataclass
class WorkloadConfig:
    """Workload knobs, mirroring the paper's Table II query parameters.

    ``placement`` positions the query rectangles: ``uniform`` spreads
    them over the whole domain (the paper's workload); ``gaussian`` and
    ``skewed`` concentrate them where the matching GSTD data
    distributions put their mass, so skewed data can be probed with
    realistically correlated queries.
    """

    spatial_extent: float = 0.01      # fraction of the domain area
    temporal_extent: float = 0.10     # fraction of the temporal domain T
    temporal_domain: int = 100_000    # the paper's T
    count: int = 200
    seed: int = 7
    placement: str = "uniform"        # uniform | gaussian | skewed

    def __post_init__(self) -> None:
        if not 0.0 < self.spatial_extent <= 1.0:
            raise ValueError("spatial_extent must be in (0, 1]")
        if not 0.0 <= self.temporal_extent <= 1.0:
            raise ValueError("temporal_extent must be in [0, 1]")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.placement not in ("uniform", "gaussian", "skewed"):
            raise ValueError(f"unknown placement {self.placement!r}")


def generate_queries(config: SWSTConfig, workload: WorkloadConfig,
                     now: int) -> list[Query]:
    """Random queries inside the queriable period at stream time ``now``.

    The query rectangle is a square whose area is ``spatial_extent`` of the
    spatial domain; the query interval has length
    ``temporal_extent × temporal_domain`` and is placed uniformly inside
    the queriable period (clipped to it when longer).
    """
    rng = random.Random(workload.seed)
    space = config.space
    width = space.x_hi - space.x_lo
    height = space.y_hi - space.y_lo
    side_x = max(1, round(width * math.sqrt(workload.spatial_extent)))
    side_y = max(1, round(height * math.sqrt(workload.spatial_extent)))
    q_lo, q_hi = config.queriable_period(now)
    length = round(workload.temporal_extent * workload.temporal_domain)
    queries: list[Query] = []
    for _ in range(workload.count):
        fx, fy = _placement_fraction(rng, workload.placement)
        x_lo = space.x_lo + round(fx * max(width - side_x, 0))
        y_lo = space.y_lo + round(fy * max(height - side_y, 0))
        area = Rect(x_lo, y_lo, min(x_lo + side_x, space.x_hi),
                    min(y_lo + side_y, space.y_hi))
        span = max(q_hi - q_lo - length, 0)
        t_lo = q_lo + rng.randint(0, span)
        t_hi = min(t_lo + length, q_hi)
        queries.append(Query(area=area, t_lo=t_lo, t_hi=t_hi))
    return queries


def _placement_fraction(rng: random.Random,
                        placement: str) -> tuple[float, float]:
    """Query-centre position as domain fractions, matching the GSTD
    initial-distribution shapes."""
    if placement == "uniform":
        return rng.random(), rng.random()
    if placement == "gaussian":
        return (min(max(rng.gauss(0.5, 0.15), 0.0), 1.0),
                min(max(rng.gauss(0.5, 0.15), 0.0), 1.0))
    return rng.random() ** 2, rng.random() ** 2  # skewed
