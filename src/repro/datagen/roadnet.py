"""Road-network-constrained movement generator.

GSTD (the paper's generator) moves objects freely; real telematics fleets
move along roads, which produces spatially *clustered* streams — the skew
regime where the paper says SWST's memo shines — and natural
long-duration entries when vehicles park.  This generator builds a grid
road network with :mod:`networkx`, routes vehicles over shortest paths
between random intersections, and emits a position report at every
intersection passed plus a dwell at each destination.

Output is the same :class:`Report` stream type as GSTD, so every harness
and index consumes it unchanged.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from ..core.records import Rect
from .gstd import Report


@dataclass
class RoadNetConfig:
    """Parameters of a road-network simulation.

    The network is an ``nodes_x × nodes_y`` grid of intersections with a
    fraction of edges removed (dead ends / rivers) while staying
    connected.  Vehicles drive shortest paths at integer per-edge travel
    times drawn from ``[travel_lo, travel_hi]`` and dwell at each
    destination for ``[dwell_lo, dwell_hi]`` time units.
    """

    num_vehicles: int = 100
    nodes_x: int = 12
    nodes_y: int = 12
    max_time: int = 50_000
    space: Rect = field(default_factory=lambda: Rect(0, 0, 10000, 10000))
    travel_lo: int = 20
    travel_hi: int = 120
    dwell_lo: int = 100
    dwell_hi: int = 1500
    removed_fraction: float = 0.15
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_vehicles < 1:
            raise ValueError("num_vehicles must be >= 1")
        if self.nodes_x < 2 or self.nodes_y < 2:
            raise ValueError("the road grid needs at least 2x2 nodes")
        if not 1 <= self.travel_lo <= self.travel_hi:
            raise ValueError("need 1 <= travel_lo <= travel_hi")
        if not 1 <= self.dwell_lo <= self.dwell_hi:
            raise ValueError("need 1 <= dwell_lo <= dwell_hi")
        if not 0.0 <= self.removed_fraction < 0.5:
            raise ValueError("removed_fraction must be in [0, 0.5)")


class RoadNetGenerator:
    """Simulates vehicles on a grid road network."""

    def __init__(self, config: RoadNetConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.graph = self._build_network()
        self._positions = self._node_positions()

    def _build_network(self) -> nx.Graph:
        cfg = self.config
        graph = nx.grid_2d_graph(cfg.nodes_x, cfg.nodes_y)
        edges = list(graph.edges())
        self._rng.shuffle(edges)
        to_remove = int(len(edges) * cfg.removed_fraction)
        for edge in edges[:to_remove]:
            graph.remove_edge(*edge)
            if not nx.is_connected(graph):
                graph.add_edge(*edge)  # keep the network connected
        for u, v in graph.edges():
            graph.edges[u, v]["travel"] = self._rng.randint(cfg.travel_lo,
                                                            cfg.travel_hi)
        return graph

    def _node_positions(self) -> dict[tuple[int, int], tuple[int, int]]:
        cfg = self.config
        width = cfg.space.x_hi - cfg.space.x_lo
        height = cfg.space.y_hi - cfg.space.y_lo
        return {
            (i, j): (cfg.space.x_lo + i * width // (cfg.nodes_x - 1),
                     cfg.space.y_lo + j * height // (cfg.nodes_y - 1))
            for i, j in self.graph.nodes()
        }

    def _route(self, origin: int, destination: int) -> list[int]:
        return nx.shortest_path(self.graph, origin, destination,
                                weight="travel")

    def stream(self) -> Iterator[Report]:
        """Yield reports ordered by timestamp."""
        cfg = self.config
        rng = self._rng
        nodes = list(self.graph.nodes())
        # Heap of (next_report_time, vehicle, itinerary); the itinerary is
        # the remaining node path, empty = choose a new destination.
        heap: list[tuple[int, int, list[int]]] = []
        for vehicle in range(cfg.num_vehicles):
            start = rng.choice(nodes)
            heapq.heappush(heap, (rng.randint(0, cfg.travel_hi), vehicle,
                                  [start]))
        while heap:
            t, vehicle, path = heapq.heappop(heap)
            if t > cfg.max_time:
                continue
            node = path[0]
            x, y = self._positions[node]
            yield Report(oid=vehicle, x=x, y=y, t=t)
            rest = path[1:]
            if rest:
                travel = self.graph.edges[node, rest[0]]["travel"]
                heapq.heappush(heap, (t + travel, vehicle, rest))
                continue
            # Destination reached: dwell (a long-duration entry), then
            # drive somewhere else.
            destination = rng.choice(nodes)
            while destination == node:
                destination = rng.choice(nodes)
            dwell = rng.randint(cfg.dwell_lo, cfg.dwell_hi)
            itinerary = self._route(node, destination)[1:]
            if not itinerary:  # pragma: no cover - defensive
                continue
            first_leg = self.graph.edges[node, itinerary[0]]["travel"]
            heapq.heappush(heap, (t + dwell + first_leg, vehicle,
                                  itinerary))

    def materialize(self) -> list[Report]:
        """Return the whole stream as a list."""
        return list(self.stream())
