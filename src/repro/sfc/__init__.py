"""Space-filling curves used to linearise 2-D locations into B+ tree keys."""

from .hilbert import hc_decode, hc_encode
from .zcurve import (DEFAULT_ORDER, zc_decode, zc_decode_many, zc_encode,
                     zc_encode_many, zc_in_rect, zc_range)

__all__ = [
    "DEFAULT_ORDER",
    "hc_decode",
    "hc_encode",
    "zc_decode",
    "zc_decode_many",
    "zc_encode",
    "zc_encode_many",
    "zc_in_rect",
    "zc_range",
]
