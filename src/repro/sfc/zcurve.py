"""Z-order (Morton / Peano) curve.

SWST linearises the spatial part of its B+ tree keys with the Z-curve
because of the property proved useful in Section III-B.2 of the paper: for
any axis-aligned rectangle, the lower-left corner has the *minimum* Z-value
and the upper-right corner the *maximum* Z-value among all points inside the
rectangle.  That holds because the Morton code is monotone in each
coordinate separately, and it is what lets a single key range
``[zc(lo), zc(hi)]`` cover every point of the rectangle (with false
positives removed later in the refinement step).
"""

from __future__ import annotations

DEFAULT_ORDER = 16  # bits per axis; 32-bit Z-values


def _part1by1(value: int, order: int) -> int:
    """Spread the low ``order`` bits of ``value`` into the even positions."""
    result = 0
    for bit in range(order):
        result |= ((value >> bit) & 1) << (2 * bit)
    return result


def _compact1by1(value: int, order: int) -> int:
    """Inverse of :func:`_part1by1`: gather the even bit positions."""
    result = 0
    for bit in range(order):
        result |= ((value >> (2 * bit)) & 1) << bit
    return result


def zc_encode(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Interleave ``x`` and ``y`` (each in ``[0, 2**order)``) into a Z-value.

    Bit layout: y bits occupy odd positions, x bits even positions, so the
    curve sweeps x fastest — matching the classic N-shaped Peano ordering.
    """
    limit = 1 << order
    if not 0 <= x < limit or not 0 <= y < limit:
        raise ValueError(f"coordinates ({x}, {y}) out of range "
                         f"[0, {limit}) for order {order}")
    return _part1by1(x, order) | (_part1by1(y, order) << 1)


def zc_decode(z: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Invert :func:`zc_encode`; returns ``(x, y)``."""
    limit = 1 << (2 * order)
    if not 0 <= z < limit:
        raise ValueError(f"z value {z} out of range [0, {limit}) "
                         f"for order {order}")
    return _compact1by1(z, order), _compact1by1(z >> 1, order)


def zc_range(x_lo: int, y_lo: int, x_hi: int, y_hi: int,
             order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Z-value range covering the closed rectangle [x_lo..x_hi]×[y_lo..y_hi].

    By the monotonicity property the minimum is at the lower-left corner and
    the maximum at the upper-right corner.  The returned range may include
    Z-values of points *outside* the rectangle; callers must refine.
    """
    if x_lo > x_hi or y_lo > y_hi:
        raise ValueError("empty rectangle")
    return zc_encode(x_lo, y_lo, order), zc_encode(x_hi, y_hi, order)


def zc_in_rect(z: int, x_lo: int, y_lo: int, x_hi: int, y_hi: int,
               order: int = DEFAULT_ORDER) -> bool:
    """True if the point encoded by ``z`` lies in the closed rectangle."""
    x, y = zc_decode(z, order)
    return x_lo <= x <= x_hi and y_lo <= y <= y_hi
