"""Z-order (Morton / Peano) curve.

SWST linearises the spatial part of its B+ tree keys with the Z-curve
because of the property proved useful in Section III-B.2 of the paper: for
any axis-aligned rectangle, the lower-left corner has the *minimum* Z-value
and the upper-right corner the *maximum* Z-value among all points inside the
rectangle.  That holds because the Morton code is monotone in each
coordinate separately, and it is what lets a single key range
``[zc(lo), zc(hi)]`` cover every point of the rectangle (with false
positives removed later in the refinement step).

The bit interleave runs over precomputed 256-entry tables (one byte of
input per step) instead of a per-bit Python loop, and the batched
entry points (:func:`zc_encode_many`, :func:`zc_decode_many`) amortise
the per-call validation over whole arrays — the query hot path encodes
one corner pair per (spatial cell, query) and decodes every candidate
key, so the codec is the innermost loop of the search tier.
"""

from __future__ import annotations

from typing import Iterable, Sequence

DEFAULT_ORDER = 16  # bits per axis; 32-bit Z-values


def _part1by1_ref(value: int, order: int) -> int:
    """Reference bit loop: spread the low ``order`` bits into even positions.

    Kept as the ground truth the table-driven path is tested against.
    """
    result = 0
    for bit in range(order):
        result |= ((value >> bit) & 1) << (2 * bit)
    return result


def _compact1by1_ref(value: int, order: int) -> int:
    """Reference inverse of :func:`_part1by1_ref`: gather even positions."""
    result = 0
    for bit in range(order):
        result |= ((value >> (2 * bit)) & 1) << bit
    return result


#: byte -> 16-bit spread (x bits moved to even positions).
_PART_TABLE = tuple(_part1by1_ref(byte, 8) for byte in range(256))
#: byte of a Z-value -> its 4 even bits, compacted.
_COMPACT_TABLE = tuple(_compact1by1_ref(byte, 4) for byte in range(256))


def _part1by1(value: int, order: int) -> int:
    """Table-driven spread; ``value`` must already fit in ``order`` bits."""
    table = _PART_TABLE
    result = table[value & 0xFF]
    shift = 0
    value >>= 8
    while value:
        shift += 16
        result |= table[value & 0xFF] << shift
        value >>= 8
    return result


def _compact1by1(value: int, order: int) -> int:
    """Table-driven gather of even bit positions (inverse of the spread)."""
    table = _COMPACT_TABLE
    result = table[value & 0xFF]
    shift = 0
    value >>= 8
    while value:
        shift += 4
        result |= table[value & 0xFF] << shift
        value >>= 8
    return result


def zc_encode(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Interleave ``x`` and ``y`` (each in ``[0, 2**order)``) into a Z-value.

    Bit layout: y bits occupy odd positions, x bits even positions, so the
    curve sweeps x fastest — matching the classic N-shaped Peano ordering.
    """
    limit = 1 << order
    if not 0 <= x < limit or not 0 <= y < limit:
        raise ValueError(f"coordinates ({x}, {y}) out of range "
                         f"[0, {limit}) for order {order}")
    return _part1by1(x, order) | (_part1by1(y, order) << 1)


def zc_decode(z: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Invert :func:`zc_encode`; returns ``(x, y)``."""
    limit = 1 << (2 * order)
    if not 0 <= z < limit:
        raise ValueError(f"z value {z} out of range [0, {limit}) "
                         f"for order {order}")
    return _compact1by1(z, order), _compact1by1(z >> 1, order)


def zc_encode_many(points: Iterable[tuple[int, int]],
                   order: int = DEFAULT_ORDER) -> list[int]:
    """Z-values of many ``(x, y)`` points in one pass.

    Equivalent to ``[zc_encode(x, y, order) for x, y in points]`` but the
    range check and the table lookups run with locals bound once for the
    whole batch.
    """
    limit = 1 << order
    table = _PART_TABLE
    out: list[int] = []
    append = out.append
    for x, y in points:
        if not 0 <= x < limit or not 0 <= y < limit:
            raise ValueError(f"coordinates ({x}, {y}) out of range "
                             f"[0, {limit}) for order {order}")
        zx = table[x & 0xFF]
        zy = table[y & 0xFF]
        shift = 0
        x >>= 8
        y >>= 8
        while x or y:
            shift += 16
            zx |= table[x & 0xFF] << shift
            zy |= table[y & 0xFF] << shift
            x >>= 8
            y >>= 8
        append(zx | (zy << 1))
    return out


def zc_decode_many(zs: Sequence[int],
                   order: int = DEFAULT_ORDER) -> list[tuple[int, int]]:
    """Decode many Z-values to ``(x, y)`` points in one pass."""
    limit = 1 << (2 * order)
    table = _COMPACT_TABLE
    out: list[tuple[int, int]] = []
    append = out.append
    for z in zs:
        if not 0 <= z < limit:
            raise ValueError(f"z value {z} out of range [0, {limit}) "
                             f"for order {order}")
        zx = z
        zy = z >> 1
        x = table[zx & 0xFF]
        y = table[zy & 0xFF]
        shift = 0
        zx >>= 8
        zy >>= 8
        while zx or zy:
            shift += 4
            x |= table[zx & 0xFF] << shift
            y |= table[zy & 0xFF] << shift
            zx >>= 8
            zy >>= 8
        append((x, y))
    return out


def zc_range(x_lo: int, y_lo: int, x_hi: int, y_hi: int,
             order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Z-value range covering the closed rectangle [x_lo..x_hi]×[y_lo..y_hi].

    By the monotonicity property the minimum is at the lower-left corner and
    the maximum at the upper-right corner.  The returned range may include
    Z-values of points *outside* the rectangle; callers must refine.
    """
    if x_lo > x_hi or y_lo > y_hi:
        raise ValueError("empty rectangle")
    return zc_encode(x_lo, y_lo, order), zc_encode(x_hi, y_hi, order)


def zc_in_rect(z: int, x_lo: int, y_lo: int, x_hi: int, y_hi: int,
               order: int = DEFAULT_ORDER) -> bool:
    """True if the point encoded by ``z`` lies in the closed rectangle."""
    x, y = zc_decode(z, order)
    return x_lo <= x <= x_hi and y_lo <= y <= y_hi
