"""Hilbert curve.

Included for completeness of the paper's Section III-B.2 argument: the
Hilbert curve clusters better than the Z-curve on average (Moon et al.,
TKDE 2001) but *violates* the corner property SWST needs — inside an
axis-aligned rectangle, the lower-left corner is not guaranteed to carry the
minimum Hilbert value nor the upper-right corner the maximum (the paper's
Fig. 2 shows ``hc(D) > hc(C)``).  The test suite demonstrates the violation
constructively.
"""

from __future__ import annotations

DEFAULT_ORDER = 16


def hc_encode(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Map ``(x, y)`` in ``[0, 2**order)²`` to its Hilbert curve distance."""
    limit = 1 << order
    if not 0 <= x < limit or not 0 <= y < limit:
        raise ValueError(f"coordinates ({x}, {y}) out of range "
                         f"[0, {limit}) for order {order}")
    rx = ry = 0
    d = 0
    s = limit >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hc_decode(d: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Invert :func:`hc_encode`; returns ``(x, y)``."""
    limit = 1 << order
    if not 0 <= d < limit * limit:
        raise ValueError(f"distance {d} out of range [0, {limit * limit}) "
                         f"for order {order}")
    x = y = 0
    t = d
    s = 1
    while s < limit:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y
