"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — produce a GSTD report stream as CSV.
* ``build`` — build an on-disk SWST index from a stream CSV.
* ``query`` — run a timeslice/interval/KNN query against a saved index
  (``--no-strict`` degrades gracefully when shards fail).
* ``scrub`` — checksum-sweep a page file — or, given an engine
  directory, every shard file plus the manifest.
* ``bench`` — regenerate one (or all) of the paper's figures.
* ``lint`` — run the project-invariant lint (``repro.analysis``) against
  the committed baseline.

Every command prints what it did and the node-access cost, so the CLI
doubles as a quick way to poke at the index's behaviour.
"""

from __future__ import annotations

import argparse
import contextlib
import csv
import sys
from dataclasses import replace
from typing import TYPE_CHECKING, Iterator

from .bench.experiments import run_all
from .bench.params import PAPER, SCALED, TINY
from .core.config import SWSTConfig
from .core.index import SWSTIndex
from .core.records import Rect
from .datagen.gstd import GSTDConfig, GSTDGenerator, Report

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .engine import ShardedEngine, WorkerEngine


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=20000,
                        help="sliding window size W (default 20000)")
    parser.add_argument("--slide", type=int, default=100,
                        help="slide L (default 100)")
    parser.add_argument("--grid", type=int, default=20,
                        help="spatial partitions per axis (default 20)")
    parser.add_argument("--d-max", type=int, default=2000,
                        help="maximum duration Dmax (default 2000)")
    parser.add_argument("--page-size", type=int, default=8192,
                        help="page size in bytes (default 8192)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard the index over N page files "
                             "(index path becomes a directory; default 1)")
    parser.add_argument("--executor", default="thread",
                        help="scatter-gather executor for --shards > 1: "
                             "serial | thread[:N] | process[:N] "
                             "(default thread)")
    parser.add_argument("--workers", action="store_true",
                        help="with --shards > 1: run each shard in a "
                             "long-lived worker process behind a "
                             "write-ahead log (durable per-batch, "
                             "supervised restarts)")


def _config_from(args: argparse.Namespace) -> SWSTConfig:
    return SWSTConfig(window=args.window, slide=args.slide,
                      x_partitions=args.grid, y_partitions=args.grid,
                      d_max=args.d_max, page_size=args.page_size,
                      n_shards=args.shards)


@contextlib.contextmanager
def _open_index(args: argparse.Namespace, config: SWSTConfig, *,
                build: bool
                ) -> "Iterator[SWSTIndex | ShardedEngine | WorkerEngine]":
    """Open (or create) the index named on the command line.

    ``--shards N`` with N > 1 selects the sharded engine, whose on-disk
    form is a directory of per-shard page files; otherwise the classic
    single page file.  ``--workers`` upgrades the sharded engine to the
    warm-worker form: one long-lived process per shard behind a
    write-ahead log, so every acknowledged batch is durable without a
    full ``save()``.  A context manager so the resolved executor (which
    may own a process pool) is torn down alongside the index even when
    the command body raises.
    """
    if config.n_shards == 1:
        if build:
            with SWSTIndex(config, path=args.index) as index:
                yield index
        else:
            with SWSTIndex.open(args.index, config) as index:
                yield index
        return
    import random
    import time

    from .engine import RetryPolicy, ShardedEngine, resolve_executor

    # Unlike the engine's deterministic in-process default, the CLI
    # wires real backoff: transient device errors get retried with
    # actual sleeps and seeded jitter (the engine core itself stays
    # clock-free; the seams are injected here, at the edge).
    retry = RetryPolicy(jitter=0.1, sleep=time.sleep,
                        rng=random.Random(0).random)
    if getattr(args, "workers", False):
        from .engine import WorkerEngine

        engine = (WorkerEngine(config, args.index, retry_policy=retry)
                  if build
                  else WorkerEngine.open(args.index, config,
                                         retry_policy=retry))
        with engine:
            yield engine
        return
    with contextlib.ExitStack() as stack:
        executor = resolve_executor(args.executor)
        stack.callback(executor.close)
        engine = (ShardedEngine(config, args.index, executor=executor,
                                retry_policy=retry)
                  if build
                  else ShardedEngine.open(args.index, config,
                                          executor=executor,
                                          retry_policy=retry))
        stack.enter_context(engine)
        yield engine


def _page_count(index: "SWSTIndex | ShardedEngine | WorkerEngine") -> int:
    if isinstance(index, SWSTIndex):
        return index.pager.page_count()
    shards = getattr(index, "shards", None)
    if shards is not None:
        return sum(shard.pager.page_count() for shard in shards)
    # Warm-worker engine: the shards live in other processes; size the
    # committed page files directly (cmd_build saves before printing).
    import os

    from .engine.engine import _shard_file_name

    return sum(
        os.path.getsize(os.path.join(index.directory, _shard_file_name(sid)))
        // index.config.page_size
        for sid in range(index.config.n_shards)
        if os.path.exists(os.path.join(index.directory, _shard_file_name(sid)))
    )


def cmd_generate(args: argparse.Namespace) -> int:
    config = GSTDConfig(num_objects=args.objects, max_time=args.max_time,
                        initial=args.distribution, seed=args.seed,
                        long_fraction=args.long_fraction)
    with contextlib.ExitStack() as stack:
        handle = sys.stdout if args.output == "-" else stack.enter_context(
            open(args.output, "w", newline=""))
        writer = csv.writer(handle)
        writer.writerow(["oid", "x", "y", "t"])
        count = 0
        for report in GSTDGenerator(config).stream():
            writer.writerow([report.oid, report.x, report.y, report.t])
            count += 1
    print(f"generated {count} reports from {args.objects} objects",
          file=sys.stderr)
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    config = _config_from(args)
    with _open_index(args, config, build=True) as index:
        with open(args.stream, newline="") as handle:
            rows = (Report(oid=int(row["oid"]), x=int(row["x"]),
                           y=int(row["y"]), t=int(row["t"]))
                    for row in csv.DictReader(handle))
            count = index.extend(rows)
        index.save()
        stats = index.stats
        sharded = f", {config.n_shards} shards" if config.n_shards > 1 else ""
        print(f"built {args.index}: {count} reports, {len(index)} stored "
              f"entries, {stats.node_accesses} node accesses, "
              f"{stats.node_cache_hits} node parses avoided, "
              f"{_page_count(index)} pages{sharded}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    config = _config_from(args)
    kwargs: dict[str, object] = {"window": args.logical_window}
    if config.n_shards > 1:
        # strict is an engine-level notion; the single-file index has
        # no shards to lose.
        kwargs["strict"] = not args.no_strict
    elif args.no_strict:
        print("--no-strict has no effect without --shards > 1",
              file=sys.stderr)
    with _open_index(args, config, build=False) as index:
        area = Rect(*args.area)
        if args.knn:
            result = index.query_knn(args.point[0], args.point[1], args.knn,
                                     args.t_lo,
                                     args.t_hi if args.t_hi >= 0 else None,
                                     **kwargs)
        else:
            t_hi = args.t_hi if args.t_hi >= 0 else args.t_lo
            result = index.query_interval(area, args.t_lo, t_hi, **kwargs)
        for entry in result:
            end = "current" if entry.d is None else entry.s + entry.d
            print(f"oid={entry.oid} x={entry.x} y={entry.y} "
                  f"s={entry.s} end={end}")
        print(f"-- {len(result)} entries, "
              f"{result.stats.node_accesses} node accesses", file=sys.stderr)
        if result.stats.degraded:
            failures = getattr(result, "failures", [])
            for failure in failures:
                print(f"degraded: {failure}", file=sys.stderr)
            print(f"-- DEGRADED result: {len(failures)} shard(s) missing",
                  file=sys.stderr)
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    import os

    from .storage import StorageError
    from .storage.scrub import scrub_page_file

    if os.path.isdir(args.index):
        from .engine import scrub_directory

        dir_report = scrub_directory(args.index)
        print(dir_report.render())
        return 0 if dir_report.ok else 1
    try:
        report = scrub_page_file(args.index)
    except (StorageError, OSError) as exc:
        print(f"{args.index}: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def cmd_reshard(args: argparse.Namespace) -> int:
    import os

    from .engine import ReshardError, reshard

    if not os.path.isdir(args.index):
        print(f"{args.index}: not an engine directory (only sharded "
              f"directories can be resharded)", file=sys.stderr)
        return 2
    config = _config_from(args)
    try:
        report = reshard(args.index, args.to, config)
    except ReshardError as exc:
        print(f"{args.index}: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


#: Figures with (series name -> value column) mappings for --chart.
_CHARTABLE = {
    "Fig.9": {"SWST": 1, "MV3R": 2},
    "Fig.10": {"SWST": 1, "MV3R": 2},
    "Fig.11": {"with memo": 1, "without memo": 2},
    "Ablation-W": {"SWST": 1, "wave": 2},
    "Ablation-HR": {"SWST": 1, "HR-tree": 2},
    "Sec.V-E(a)": {"SWST": 2},
    "Sec.V-E(b)": {"SWST": 2},
}


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.main import run_lint

    return run_lint(args)


def cmd_bench(args: argparse.Namespace) -> int:
    import pathlib

    from .bench.reporting import chart_from_result
    from .bench.svgplots import svg_from_result

    params = {"tiny": TINY, "scaled": SCALED, "paper": PAPER}[args.scale]
    if args.objects:
        params = replace(params, dataset_objects=tuple(args.objects))
    results = run_all(params)
    wanted = set(args.figures) if args.figures else None
    svg_dir = pathlib.Path(args.svg) if args.svg else None
    if svg_dir is not None:
        svg_dir.mkdir(parents=True, exist_ok=True)
    for result in results:
        if wanted and not any(w.lower() in result.exp_id.lower()
                              for w in wanted):
            continue
        if args.chart and result.exp_id in _CHARTABLE:
            print(chart_from_result(result, _CHARTABLE[result.exp_id]))
        else:
            print(result.render())
        print()
        if svg_dir is not None and result.exp_id in _CHARTABLE:
            name = result.exp_id.replace(".", "_").lower() + ".svg"
            (svg_dir / name).write_text(
                svg_from_result(result, _CHARTABLE[result.exp_id]))
            print(f"  [wrote {svg_dir / name}]", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import random
    import time

    from .engine import RetryPolicy
    from .serve import ServeOptions
    from .serve.main import run as serve_run

    config = _config_from(args)
    if config.n_shards < 1:
        print("serve needs --shards >= 1", file=sys.stderr)
        return 2
    # The serving layer itself is clock- and rng-free (invariant R002);
    # the real clock and a seeded rng are wired in here, at the edge —
    # retry backoff sleeps, jittered Retry-After hints.
    retry = RetryPolicy(jitter=0.1, sleep=time.sleep,
                        rng=random.Random(0).random)
    options = ServeOptions(
        index=args.index, config=config, create=args.create,
        workers=getattr(args, "workers", False), executor=args.executor,
        host=args.host, port=args.port, capacity=args.capacity,
        max_batch=args.max_batch, max_linger=args.max_linger,
        request_timeout=args.request_timeout, retry_policy=retry,
        rng=random.Random(1).random)
    return serve_run(options)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SWST sliding-window spatio-temporal index "
                    "(ICDE 2012 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a GSTD report stream as CSV")
    generate.add_argument("--objects", type=int, default=1000)
    generate.add_argument("--max-time", type=int, default=100_000)
    generate.add_argument("--distribution", default="uniform",
                          choices=["uniform", "gaussian", "skewed"])
    generate.add_argument("--long-fraction", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--output", default="-",
                          help="output CSV path (default stdout)")
    generate.set_defaults(func=cmd_generate)

    build = commands.add_parser(
        "build", help="build an on-disk SWST index from a stream CSV")
    build.add_argument("stream", help="input CSV from 'generate'")
    build.add_argument("index", help="output index page file")
    _add_config_args(build)
    build.set_defaults(func=cmd_build)

    query = commands.add_parser(
        "query", help="query a saved SWST index")
    query.add_argument("index", help="index page file from 'build'")
    query.add_argument("--area", type=int, nargs=4,
                       default=[0, 0, 10000, 10000],
                       metavar=("XLO", "YLO", "XHI", "YHI"))
    query.add_argument("--t-lo", type=int, required=True)
    query.add_argument("--t-hi", type=int, default=-1,
                       help="omit for a timeslice query")
    query.add_argument("--logical-window", type=int, default=None)
    query.add_argument("--knn", type=int, default=None,
                       help="return the K nearest entries instead")
    query.add_argument("--point", type=int, nargs=2, default=[5000, 5000],
                       metavar=("X", "Y"), help="KNN query point")
    query.add_argument("--no-strict", action="store_true",
                       help="with --shards > 1: answer from the surviving "
                            "shards when one fails, instead of erroring "
                            "(failures are reported on stderr)")
    _add_config_args(query)
    query.set_defaults(func=cmd_query)

    scrub = commands.add_parser(
        "scrub", help="checksum-sweep a page file (or a whole engine "
                      "directory), reporting corruption")
    scrub.add_argument("index", help="page file or engine directory to "
                                     "verify")
    scrub.set_defaults(func=cmd_scrub)

    reshard = commands.add_parser(
        "reshard", help="rewrite an engine directory at a new shard "
                        "count (side-by-side build, atomic flip)")
    reshard.add_argument("index", help="engine directory from 'build' "
                                       "with --shards")
    reshard.add_argument("--to", type=int, required=True, metavar="M",
                         help="target shard count")
    _add_config_args(reshard)
    reshard.set_defaults(func=cmd_reshard)

    bench = commands.add_parser(
        "bench", help="regenerate the paper's figures")
    bench.add_argument("--scale", default="scaled",
                       choices=["tiny", "scaled", "paper"])
    bench.add_argument("--figures", nargs="*", default=None,
                       help="only figures whose id contains these strings")
    bench.add_argument("--objects", type=int, nargs="*", default=None,
                       help="override the dataset-size sweep")
    bench.add_argument("--chart", action="store_true",
                       help="render figures as ASCII bar charts")
    bench.add_argument("--svg", default=None, metavar="DIR",
                       help="also write one SVG chart per figure to DIR")
    bench.set_defaults(func=cmd_bench)

    serve = commands.add_parser(
        "serve", help="serve an engine directory over HTTP/JSON "
                      "(async front end: request coalescing, admission "
                      "control, slide-aware backpressure)")
    serve.add_argument("index", help="engine directory from 'build' "
                                     "with --shards, or a new one with "
                                     "--create")
    serve.add_argument("--create", action="store_true",
                       help="create a fresh engine directory instead "
                            "of opening an existing one")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8781,
                       help="bind port (0 picks a free one; "
                            "default 8781)")
    serve.add_argument("--capacity", type=int, default=64,
                       help="admission bound: concurrent data-plane "
                            "requests before 503 (default 64)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescer flush threshold; 1 disables "
                            "coalescing (default 64)")
    serve.add_argument("--max-linger", type=float, default=0.0,
                       help="coalescer linger window in seconds; 0 = "
                            "one event-loop tick (default 0)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       help="default per-request deadline in seconds "
                            "(clients can override with X-Deadline)")
    _add_config_args(serve)
    serve.set_defaults(func=cmd_serve)

    from .analysis.main import add_lint_arguments

    lint = commands.add_parser(
        "lint", help="run the project-invariant lint (rules R001-R011)")
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
