#!/usr/bin/env python
"""Traffic monitoring over a road network.

Vehicles move along a grid road network (network-constrained movement —
spatially clustered, with long dwell entries when vehicles park), and a
traffic-operations console asks: which corridors are busy, where did a
given truck dwell, and which vehicles can respond to an incident.

Also shows the tuning advisor picking the index parameters from workload
facts, per the paper's Section V-E guidance.

Run:  python examples/roadnet_traffic.py
"""

from repro import Rect, SWSTIndex
from repro.core.tuning import suggest_config
from repro.datagen import RoadNetConfig, RoadNetGenerator


def main() -> None:
    space = Rect(0, 0, 9999, 9999)

    # Let the advisor derive the configuration from workload facts.
    advice = suggest_config(space, window=20000, slide=100, d_max=2000,
                            page_size=2048)
    print("tuning advisor:")
    for note in advice.notes:
        print(f"  - {note}")
    index = SWSTIndex(advice.config)

    # Simulate the fleet.
    generator = RoadNetGenerator(RoadNetConfig(
        num_vehicles=150, nodes_x=10, nodes_y=10, max_time=60000,
        space=space, dwell_lo=200, dwell_hi=1900, seed=11))
    stream = generator.materialize()
    for report in stream:
        index.report(report.oid, report.x, report.y, report.t)
    print(f"\ningested {len(stream)} reports; "
          f"road network has {generator.graph.number_of_edges()} edges")

    q_lo, q_hi = advice.config.queriable_period(index.now)

    # --- Corridor load: how many vehicles used each east-west band? --------
    print("\nvehicles per horizontal corridor (last 5000 units):")
    for band in range(5):
        corridor = Rect(0, band * 2000, 9999, band * 2000 + 1999)
        hits = index.query_interval(corridor, q_hi - 5000, q_hi)
        bar = "#" * (len(hits.oids()) // 4)
        print(f"  y {band * 2000:5d}-{band * 2000 + 1999:5d}: "
              f"{len(hits.oids()):4d} {bar}")

    # --- Dwell audit for one vehicle: its long-duration entries. -----------
    vehicle = 7
    trail = [e for e in index.query_interval(space, q_lo, q_hi)
             if e.oid == vehicle]
    dwells = [e for e in trail if e.d is not None and e.d >= 200]
    print(f"\nvehicle {vehicle}: {len(trail)} entries in the window, "
          f"{len(dwells)} dwells >= 200 units:")
    for entry in sorted(dwells, key=lambda e: e.s)[:5]:
        print(f"  parked at ({entry.x}, {entry.y}) "
              f"during [{entry.s}, {entry.end})")

    # --- Incident response: nearest units right now. -------------------------
    incident = (3000, 7000)
    responders = index.query_knn(*incident, k=4, t_lo=q_hi)
    print(f"\nnearest 4 vehicles to incident at {incident}:")
    for entry in responders:
        dist = ((entry.x - incident[0]) ** 2
                + (entry.y - incident[1]) ** 2) ** 0.5
        print(f"  vehicle {entry.oid:3d} at ({entry.x}, {entry.y}) — "
              f"{dist:.0f} units")

    index.close()


if __name__ == "__main__":
    main()
