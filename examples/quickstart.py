#!/usr/bin/env python
"""Quickstart: the SWST public API in two minutes.

Creates a small sliding-window index, feeds it a handful of moving-object
reports, and runs every query type: timeslice, interval, logical-window
and KNN.

Run:  python examples/quickstart.py
"""

from repro import Rect, SWSTConfig, SWSTIndex


def main() -> None:
    # A sliding window of 2 000 time units, sliding every 100, over a
    # 1000 x 1000 spatial domain split into 5 x 5 grid cells.
    config = SWSTConfig(
        window=2000,
        slide=100,
        x_partitions=5,
        y_partitions=5,
        d_max=300,
        duration_interval=50,
        space=Rect(0, 0, 999, 999),
    )
    index = SWSTIndex(config)  # in-memory page file; pass path= for disk

    # --- Closed entries: the full valid time is known up front. ----------
    index.insert(oid=1, x=120, y=450, s=1000, d=50)   # valid [1000, 1050)
    index.insert(oid=2, x=600, y=300, s=1005, d=200)  # valid [1005, 1205)

    # --- Current entries: the end time is open until the next report. ----
    index.report(oid=3, x=400, y=420, t=1010)
    index.report(oid=3, x=410, y=430, t=1100)  # closes the 1010 entry
    print("live objects:", sorted(index.current_objects()))

    # --- Timeslice query: who was inside this rectangle at t = 1020? -----
    area = Rect(0, 0, 700, 700)
    at_1020 = index.query_timeslice(area, 1020)
    print(f"\nat t=1020, {len(at_1020)} entries in {area}:")
    for entry in at_1020:
        print(f"  object {entry.oid} at ({entry.x}, {entry.y}), "
              f"valid [{entry.s}, {entry.end})")

    # --- Interval query with cost statistics. ----------------------------
    between = index.query_interval(area, 1000, 1100)
    print(f"\nvalid during [1000, 1100]: {sorted(between.oids())}")
    print(f"  cost: {between.stats.node_accesses} node accesses, "
          f"{between.stats.candidates} candidates, "
          f"{between.stats.refined_out} refined out")

    # --- Logical windows: shorter history for a restricted consumer. -----
    index.advance_time(1600)
    recent_only = index.query_interval(area, 0, 1600, window=500)
    print(f"\nwith a 500-unit logical window: {sorted(recent_only.oids())}")

    # --- KNN (the paper's future-work query type). ------------------------
    nearest = index.query_knn(x=150, y=450, k=2, t_lo=1020)
    print("\n2 nearest objects to (150, 450) at t=1020:",
          [entry.oid for entry in nearest])

    # --- Sliding-window maintenance happens automatically. ----------------
    # Jumping past 2*Wmax drops the whole first window in O(pages).
    index.advance_time(2 * config.w_max)
    print(f"\nafter the window slid past everything: "
          f"{len(index)} physical entries remain")

    index.close()


if __name__ == "__main__":
    main()
