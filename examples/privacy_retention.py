#!/usr/bin/env python
"""Limited retention and limited disclosure — the paper's privacy goals.

Demonstrates the two Hippocratic-database goals SWST targets (Section I):

* **limited retention** — entries expire with the sliding window and are
  physically removed, wholesale, with almost no overhead; per-object
  retention times shorter than the window are honoured too;
* **limited disclosure** — different consumers query the same physical
  index under different logical window sizes.

Run:  python examples/privacy_retention.py
"""

from repro import Rect, SWSTConfig, SWSTIndex


def main() -> None:
    config = SWSTConfig(window=2000, slide=100, x_partitions=4,
                        y_partitions=4, d_max=300, duration_interval=50,
                        space=Rect(0, 0, 999, 999), page_size=1024)
    index = SWSTIndex(config)
    everywhere = config.space

    # A user's trail over ~3 windows of time.
    trail = [(100 + 400 * i, 50 + 80 * i, 500) for i in range(12)]
    for step, (t, x, y) in enumerate(trail):
        index.report(oid=1, x=x, y=y, t=t)
    print(f"user 1 reported {len(trail)} positions between "
          f"t={trail[0][0]} and t={trail[-1][0]}")

    # --- Limited retention via the sliding window. ---------------------------
    q_lo, q_hi = config.queriable_period(index.now)
    visible = index.query_interval(everywhere, 0, q_hi)
    print(f"\nqueriable period is [{q_lo}, {q_hi}] "
          f"(window W={config.window})")
    print(f"visible entries: {len(visible)} of {len(trail)} reports; "
          f"older positions are beyond the window")
    print(f"physically stored: {len(index)} "
          f"(expired windows were dropped wholesale)")

    # The drop is O(pages), not O(entries): show the counters.
    before = index.stats.snapshot()
    index.advance_time(index.now + 2 * config.w_max)
    delta = index.stats.diff(before)
    print(f"\nsliding two more windows forward: {delta.frees} pages freed "
          f"with only {delta.node_accesses} node accesses — "
          f"no per-entry work")
    print(f"physically stored now: {len(index)}")

    # --- Per-object retention below the window (Section IV-B(d)). ------------
    t0 = index.now
    index.report(2, 100, 100, t0 + 10)
    index.report(3, 200, 200, t0 + 10)
    index.set_retention(2, 300)  # a privacy-sensitive user: 300 units only
    index.advance_time(t0 + 600)
    result = index.query_interval(everywhere, 0, index.now)
    print(f"\nobjects 2 and 3 reported together; object 2 chose a "
          f"300-unit retention")
    print(f"after 600 units, queries see: {sorted(result.oids())} "
          f"(object 2's entry is already hidden)")

    # --- Limited disclosure via logical windows. ------------------------------
    t1 = index.now
    for i, offset in enumerate((50, 450, 850, 1250)):
        index.insert(10 + i, 111 * (i + 1), 500, t1 + offset, 100)
    index.advance_time(t1 + 1400)
    print("\nfour sightings spread over 1250 units; three consumers with "
          "different clearances:")
    for consumer, logical in (("police (full window)", None),
                              ("city-planning", 800),
                              ("advertiser", 300)):
        hits = index.query_interval(everywhere, 0, index.now,
                                    window=logical)
        shown = sorted(oid for oid in hits.oids() if oid >= 10)
        print(f"  {consumer:22s}: sees objects {shown}")

    index.close()


if __name__ == "__main__":
    main()
