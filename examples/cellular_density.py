#!/usr/bin/env python
"""Cellular-provider usage statistics — the paper's motivating scenario.

A cellular operator tracks handset positions under a limited-retention
sliding window and asks the Section I questions: *how does the density of
users vary with time at a particular region?* — answered with timeslice
and interval queries, never touching data older than the window.

Run:  python examples/cellular_density.py
"""

from repro import Rect, SWSTConfig, SWSTIndex
from repro.datagen import GSTDConfig, GSTDGenerator


def main() -> None:
    space = Rect(0, 0, 9999, 9999)
    config = SWSTConfig(window=20000, slide=100, x_partitions=10,
                        y_partitions=10, d_max=2000, duration_interval=100,
                        space=space, page_size=2048)
    index = SWSTIndex(config)

    # Simulate handsets with GSTD: gaussian density around the city core.
    stream = GSTDGenerator(GSTDConfig(
        num_objects=300, max_time=60000, space=space,
        interval_lo=1, interval_hi=2000, initial="gaussian", seed=42,
    )).materialize()
    for report in stream:
        index.report(report.oid, report.x, report.y, report.t)
    print(f"ingested {len(stream)} position reports; "
          f"{len(index)} entries physically stored "
          f"(older windows already dropped)")

    now = index.now
    q_lo, q_hi = config.queriable_period(now)
    print(f"stream time {now}; queriable period [{q_lo}, {q_hi}]")

    # --- Density per district at one instant. ------------------------------
    districts = {
        "downtown": Rect(4000, 4000, 6000, 6000),
        "harbour": Rect(0, 0, 2500, 2500),
        "airport": Rect(7500, 7500, 9999, 9999),
    }
    t = q_hi - 500
    print(f"\nuser density at t={t}:")
    for name, area in districts.items():
        hits = index.query_timeslice(area, t)
        print(f"  {name:10s}: {len(hits.oids()):4d} users "
              f"({hits.stats.node_accesses} node accesses)")

    # --- Density over time: sample the last few thousand time units. -------
    print("\ndowntown density over time:")
    for sample in range(q_hi - 4000, q_hi + 1, 1000):
        hits = index.query_timeslice(districts["downtown"], sample)
        bar = "#" * len(hits.oids())
        print(f"  t={sample:6d}: {len(hits.oids()):4d} {bar}")

    # --- Visitors during an interval (for capacity planning). --------------
    window_hits = index.query_interval(districts["downtown"],
                                       q_hi - 3000, q_hi)
    print(f"\ndistinct downtown visitors in the last 3000 units: "
          f"{len(window_hits.oids())}")

    # --- Limited disclosure: partner services see shorter histories. -------
    print("\nsame interval question under per-partner logical windows:")
    for partner, logical in (("ads-partner", 2000),
                             ("traffic-partner", 8000),
                             ("internal", None)):
        hits = index.query_interval(districts["downtown"], q_lo, q_hi,
                                    window=logical)
        label = f"{logical or config.window} units"
        print(f"  {partner:16s} (history {label:>12s}): "
              f"{len(hits.oids())} users visible")

    index.close()


if __name__ == "__main__":
    main()
