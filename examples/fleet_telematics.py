#!/usr/bin/env python
"""Fleet telematics: tracking vehicles with mixed report rates.

Telematics (the paper's second motivating domain): delivery vans report
often while moving; parked trucks go quiet for long stretches, producing
the *long-duration entries* that SWST's isPresent memo is designed for.
Also demonstrates KNN dispatch and arbitrary deletion (a capability MV3R's
partial persistency cannot offer).

Run:  python examples/fleet_telematics.py
"""

import random

from repro import Rect, SWSTConfig, SWSTIndex


def main() -> None:
    space = Rect(0, 0, 9999, 9999)
    config = SWSTConfig(window=10000, slide=100, x_partitions=8,
                        y_partitions=8, d_max=5000, duration_interval=250,
                        space=space, page_size=2048)
    index = SWSTIndex(config)
    rng = random.Random(7)

    # 40 vans move and report every ~50-200 units; 5 trucks park at the
    # depot and stay silent for thousands of units.
    DEPOT = Rect(4800, 4800, 5200, 5200)
    vans = {oid: (rng.randrange(10000), rng.randrange(10000))
            for oid in range(40)}
    trucks = {oid: (rng.randrange(4800, 5201), rng.randrange(4800, 5201))
              for oid in range(100, 105)}

    events = []
    for oid, (x, y) in trucks.items():
        events.append((rng.randrange(0, 50), oid, x, y))
    t = 0
    positions = dict(vans)
    while t < 15000:
        t += rng.randrange(1, 10)
        oid = rng.choice(list(vans))
        x, y = positions[oid]
        x = min(max(x + rng.randrange(-150, 151), 0), 9999)
        y = min(max(y + rng.randrange(-150, 151), 0), 9999)
        positions[oid] = (x, y)
        events.append((t, oid, x, y))
    # Parked trucks wake up late and report once more.
    for oid, (x, y) in trucks.items():
        events.append((15000 + rng.randrange(0, 100), oid, x, y))
    events.sort()
    for t, oid, x, y in events:
        index.report(oid, x, y, t)
    print(f"ingested {len(events)} reports from "
          f"{len(vans) + len(trucks)} vehicles; now = {index.now}")

    q_lo, q_hi = config.queriable_period(index.now)

    # --- Who is at the depot right now? -------------------------------------
    at_depot = index.query_timeslice(DEPOT, q_hi)
    print(f"\nvehicles at the depot now: {sorted(at_depot.oids())}")

    # --- Which vehicles passed through the depot recently? ------------------
    visited = index.query_interval(DEPOT, q_hi - 5000, q_hi)
    print(f"vehicles seen at the depot in the last 5000 units: "
          f"{sorted(visited.oids())}")
    print(f"  (query cost: {visited.stats.node_accesses} node accesses, "
          f"{visited.stats.full_hits} full hits skipped refinement)")

    # --- Dispatch: nearest 3 vehicles to an incident. ------------------------
    incident = (7000, 2500)
    nearest = index.query_knn(*incident, k=3, t_lo=q_hi)
    print(f"\nnearest 3 vehicles to incident at {incident}:")
    for entry in nearest:
        dist = ((entry.x - incident[0]) ** 2
                + (entry.y - incident[1]) ** 2) ** 0.5
        print(f"  vehicle {entry.oid} at ({entry.x}, {entry.y}), "
              f"{dist:.0f} units away")

    # --- Right-to-erasure: purge one vehicle's entries. ----------------------
    victim = 100
    trail = index.object_history(victim)
    print(f"\nvehicle {victim} has {len(trail)} queriable entries; "
          f"erasing them")
    removed = index.forget_object(victim)
    print(f"deleted {removed} entries "
          f"(SWST allows deleting any valid entry; MV3R cannot)")
    remaining = index.query_interval(space, q_lo, q_hi).oids()
    assert victim not in remaining
    print(f"vehicle {victim} no longer appears in any query")

    index.close()


if __name__ == "__main__":
    main()
